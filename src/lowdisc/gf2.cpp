#include "uhd/lowdisc/gf2.hpp"

#include <bit>

#include "uhd/common/error.hpp"

namespace uhd::ld {

int gf2_degree(gf2_poly p) noexcept {
    if (p == 0) return -1;
    return 63 - std::countl_zero(p);
}

std::uint64_t gf2_mul(std::uint64_t a, std::uint64_t b) noexcept {
    // Valid while deg(a) + deg(b) < 64 — always true for the degree <= 32
    // polynomials used here.
    std::uint64_t acc = 0;
    std::uint64_t shifted = a;
    while (b != 0) {
        if (b & 1u) acc ^= shifted;
        shifted <<= 1;
        b >>= 1;
    }
    return acc;
}

std::uint64_t gf2_mod(std::uint64_t a, gf2_poly mod) noexcept {
    const int dm = gf2_degree(mod);
    int da = gf2_degree(a);
    while (da >= dm && da >= 0) {
        a ^= mod << (da - dm);
        da = gf2_degree(a);
    }
    return a;
}

std::uint64_t gf2_mulmod(std::uint64_t a, std::uint64_t b, gf2_poly p) noexcept {
    return gf2_mod(gf2_mul(a, b), p);
}

std::uint64_t gf2_pow_x(std::uint64_t e, gf2_poly p) noexcept {
    std::uint64_t result = gf2_mod(1u, p); // handles degree-0 moduli gracefully
    std::uint64_t base = gf2_mod(2u, p);   // the polynomial "x"
    while (e != 0) {
        if (e & 1u) result = gf2_mulmod(result, base, p);
        base = gf2_mulmod(base, base, p);
        e >>= 1;
    }
    return result;
}

std::vector<std::uint64_t> prime_factors(std::uint64_t n) {
    UHD_REQUIRE(n >= 2, "prime_factors requires n >= 2");
    std::vector<std::uint64_t> factors;
    for (std::uint64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
        if (n % p == 0) {
            factors.push_back(p);
            while (n % p == 0) n /= p;
        }
    }
    if (n > 1) factors.push_back(n);
    return factors;
}

bool is_primitive(gf2_poly p) {
    const int d = gf2_degree(p);
    if (d < 1 || d > 32) return false;
    if ((p & 1u) == 0) return false; // constant term must be 1
    if (d == 1) return p == 0b11;    // x + 1 is the only degree-1 primitive

    const std::uint64_t order = (d == 64) ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << d) - 1;
    if (gf2_pow_x(order, p) != 1u) return false;
    for (const std::uint64_t q : prime_factors(order)) {
        if (gf2_pow_x(order / q, p) == 1u) return false;
    }
    return true;
}

std::vector<gf2_poly> primitive_polynomials(std::size_t count) {
    std::vector<gf2_poly> polys;
    polys.reserve(count);
    for (int degree = 1; degree <= 32 && polys.size() < count; ++degree) {
        const gf2_poly top = gf2_poly{1} << degree;
        // Interior coefficients enumerate 0 .. 2^(d-1) - 1; constant term is 1.
        const gf2_poly interior_count = gf2_poly{1} << (degree - 1);
        for (gf2_poly interior = 0; interior < interior_count && polys.size() < count;
             ++interior) {
            const gf2_poly candidate = top | (interior << 1) | 1u;
            if (is_primitive(candidate)) polys.push_back(candidate);
        }
    }
    UHD_REQUIRE(polys.size() == count, "could not enumerate enough primitive polynomials");
    return polys;
}

gf2_poly first_primitive_of_degree(int degree) {
    UHD_REQUIRE(degree >= 1 && degree <= 32, "degree must be in [1, 32]");
    const gf2_poly top = gf2_poly{1} << degree;
    const gf2_poly interior_count = gf2_poly{1} << (degree - 1);
    for (gf2_poly interior = 0; interior < interior_count; ++interior) {
        const gf2_poly candidate = top | (interior << 1) | 1u;
        if (is_primitive(candidate)) return candidate;
    }
    throw uhd::error("no primitive polynomial found (unreachable for valid degrees)");
}

} // namespace uhd::ld
