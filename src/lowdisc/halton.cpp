#include "uhd/lowdisc/halton.hpp"

#include <cmath>

#include "uhd/common/error.hpp"

namespace uhd::ld {

double radical_inverse(std::uint64_t index, unsigned base) {
    UHD_REQUIRE(base >= 2, "radical inverse base must be >= 2");
    double inv_base = 1.0 / static_cast<double>(base);
    double scale = inv_base;
    double value = 0.0;
    while (index != 0) {
        value += static_cast<double>(index % base) * scale;
        index /= base;
        scale *= inv_base;
    }
    return value;
}

std::vector<double> van_der_corput(std::size_t count, unsigned base) {
    std::vector<double> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i) points.push_back(radical_inverse(i, base));
    return points;
}

unsigned nth_prime(std::size_t n) {
    UHD_REQUIRE(n >= 1, "nth_prime is 1-based");
    unsigned candidate = 1;
    std::size_t found = 0;
    while (found < n) {
        ++candidate;
        bool prime = candidate >= 2;
        for (unsigned d = 2; static_cast<std::uint64_t>(d) * d <= candidate; ++d) {
            if (candidate % d == 0) {
                prime = false;
                break;
            }
        }
        if (prime) ++found;
    }
    return candidate;
}

halton_sequence::halton_sequence(std::size_t dimensions) {
    UHD_REQUIRE(dimensions >= 1, "need at least one Halton dimension");
    bases_.reserve(dimensions);
    for (std::size_t d = 0; d < dimensions; ++d) bases_.push_back(nth_prime(d + 1));
}

double halton_sequence::at(std::uint64_t index, std::size_t dim) const {
    UHD_REQUIRE(dim < bases_.size(), "Halton dimension out of range");
    return radical_inverse(index, bases_[dim]);
}

std::vector<double> halton_sequence::points(std::size_t dim, std::size_t count) const {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(at(i, dim));
    return out;
}

r2_sequence::r2_sequence(std::size_t dimensions) {
    UHD_REQUIRE(dimensions >= 1, "need at least one R2 dimension");
    // phi_d is the unique positive root of x^(d+1) = x + 1; alpha_d = phi^-(k).
    const double d = static_cast<double>(dimensions);
    double phi = 2.0;
    for (int iter = 0; iter < 64; ++iter) {
        phi = std::pow(1.0 + phi, 1.0 / (d + 1.0));
    }
    alphas_.reserve(dimensions);
    double a = 1.0;
    for (std::size_t k = 0; k < dimensions; ++k) {
        a /= phi;
        alphas_.push_back(a);
    }
}

double r2_sequence::at(std::uint64_t index, std::size_t dim) const {
    UHD_REQUIRE(dim < alphas_.size(), "R2 dimension out of range");
    const double x = static_cast<double>(index + 1) * alphas_[dim];
    return x - std::floor(x);
}

std::vector<double> r2_sequence::points(std::size_t dim, std::size_t count) const {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(at(i, dim));
    return out;
}

} // namespace uhd::ld
