#include "uhd/lowdisc/lfsr.hpp"

#include <bit>

#include "uhd/common/error.hpp"
#include "uhd/lowdisc/gf2.hpp"

namespace uhd::ld {

std::vector<unsigned> maximal_taps(unsigned width) {
    // Classic maximal-length tap tables (Xilinx XAPP052 / Ward & Molteno).
    // Positions are 1-based stage numbers; the feedback XORs these stages.
    switch (width) {
        case 3: return {3, 2};
        case 4: return {4, 3};
        case 5: return {5, 3};
        case 6: return {6, 5};
        case 7: return {7, 6};
        case 8: return {8, 6, 5, 4};
        case 9: return {9, 5};
        case 10: return {10, 7};
        case 11: return {11, 9};
        case 12: return {12, 6, 4, 1};
        case 13: return {13, 4, 3, 1};
        case 14: return {14, 5, 3, 1};
        case 15: return {15, 14};
        case 16: return {16, 15, 13, 4};
        case 17: return {17, 14};
        case 18: return {18, 11};
        case 19: return {19, 6, 2, 1};
        case 20: return {20, 17};
        case 21: return {21, 19};
        case 22: return {22, 21};
        case 23: return {23, 18};
        case 24: return {24, 23, 22, 17};
        case 25: return {25, 22};
        case 26: return {26, 6, 2, 1};
        case 27: return {27, 5, 2, 1};
        case 28: return {28, 25};
        case 29: return {29, 27};
        case 30: return {30, 6, 4, 1};
        case 31: return {31, 28};
        case 32: return {32, 22, 2, 1};
        default:
            throw uhd::error("maximal_taps: width must be in [3, 32]");
    }
}

lfsr::lfsr(unsigned width, std::uint32_t seed, lfsr_kind kind)
    : width_(width), kind_(kind) {
    UHD_REQUIRE(width >= 3 && width <= 32, "LFSR width must be in [3, 32]");
    mask_ = width == 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << width) - 1);
    if (kind_ == lfsr_kind::fibonacci) {
        // Tap-table feedback. Either stage-numbering convention yields the
        // primitive polynomial or its reciprocal — both are maximal-length.
        taps_mask_ = 0;
        for (const unsigned tap : maximal_taps(width)) {
            taps_mask_ |= std::uint32_t{1} << (tap - 1);
        }
    } else {
        // Galois form clocked as multiply-by-x modulo a verified primitive
        // polynomial: maximal length holds by construction.
        const gf2_poly poly = first_primitive_of_degree(static_cast<int>(width));
        taps_mask_ = static_cast<std::uint32_t>(poly) & mask_;
    }
    state_ = seed & mask_;
    UHD_REQUIRE(state_ != 0, "LFSR seed must be nonzero (all-zero state locks up)");
}

bool lfsr::step() noexcept {
    if (kind_ == lfsr_kind::fibonacci) {
        // Output is the MSB stage; feedback bit is the XOR of the taps.
        const bool out = (state_ >> (width_ - 1)) & 1u;
        const std::uint32_t fb =
            static_cast<std::uint32_t>(std::popcount(state_ & taps_mask_) & 1);
        state_ = ((state_ << 1) | fb) & mask_;
        return out;
    }
    // Galois: multiply the state polynomial by x modulo the primitive
    // polynomial (shift left; on MSB overflow, fold the low coefficients in).
    const bool out = (state_ >> (width_ - 1)) & 1u;
    state_ = (state_ << 1) & mask_;
    if (out) state_ ^= taps_mask_;
    return out;
}

std::uint32_t lfsr::next_bits(unsigned bits) noexcept {
    std::uint32_t word = 0;
    for (unsigned i = 0; i < bits && i < 32; ++i) {
        word |= static_cast<std::uint32_t>(step()) << i;
    }
    return word;
}

double lfsr::next_unit() noexcept {
    step();
    return static_cast<double>(state_) /
           static_cast<double>(std::uint64_t{1} << width_);
}

} // namespace uhd::ld
