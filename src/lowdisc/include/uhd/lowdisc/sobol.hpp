// Sobol low-discrepancy sequence generator.
//
// The paper reads its LD sequences from MATLAB's built-in Sobol generator;
// this module is the from-scratch replacement (see DESIGN.md §4.1).
// Direction numbers are derived per dimension from primitive polynomials
// over GF(2) (found by exact search, uhd/lowdisc/gf2.hpp) with
// deterministic initial values, and points are generated in Gray-code order
// (Antonov–Saleev). For any power-of-two prefix length — the paper's
// D = 1K/2K/8K — the emitted point set equals the natural-order Sobol set,
// so every equidistribution property uHD relies on is preserved.
//
// Dimension 0 is the plain van der Corput sequence in base 2 (as in every
// standard Sobol construction); dimension j >= 1 uses the j-th primitive
// polynomial.
#ifndef UHD_LOWDISC_SOBOL_HPP
#define UHD_LOWDISC_SOBOL_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/lowdisc/gf2.hpp"

namespace uhd::ld {

/// Width of the direction numbers / output fractions.
inline constexpr int sobol_bits = 32;

/// Per-dimension Sobol parameters: the GF(2) polynomial and initial m-values.
struct sobol_dimension_params {
    gf2_poly polynomial = 0;              ///< 0 marks the van der Corput dimension
    std::vector<std::uint32_t> initial_m; ///< m_1 .. m_s (odd, m_k < 2^k)
};

/// Table of direction numbers for a block of Sobol dimensions.
class sobol_directions {
public:
    /// Standard table: dimension 0 = van der Corput, dimensions >= 1 from
    /// enumerated primitive polynomials; initial m-values are drawn
    /// deterministically from `seed` (odd, in range), with m_1 = 1.
    [[nodiscard]] static sobol_directions standard(std::size_t dimensions,
                                                   std::uint64_t seed = default_seed);

    /// Deterministic default seed for the standard table.
    static constexpr std::uint64_t default_seed = 0x536f626f6cULL; // "Sobol"

    /// Number of dimensions in the table.
    [[nodiscard]] std::size_t dimensions() const noexcept { return params_.size(); }

    /// Direction numbers v_1..v_32 of `dim` (already shifted into place).
    [[nodiscard]] std::span<const std::uint32_t, sobol_bits> direction_numbers(
        std::size_t dim) const;

    /// Construction parameters of `dim` (for diagnostics and tests).
    [[nodiscard]] const sobol_dimension_params& params(std::size_t dim) const;

    /// Heap footprint (Table I memory accounting).
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    std::vector<std::uint32_t> v_; // dimensions x sobol_bits, row-major
    std::vector<sobol_dimension_params> params_;
};

/// Single-dimension Sobol stream in Gray-code order.
class sobol_sequence {
public:
    /// Bind to one dimension's direction numbers (copied; 32 entries).
    explicit sobol_sequence(std::span<const std::uint32_t, sobol_bits> directions);

    /// Next point as a 32-bit binary fraction.
    std::uint32_t next_fraction() noexcept;

    /// Next point as a double in [0, 1).
    double next() noexcept { return fraction_to_unit(next_fraction()); }

    /// Restart from index 0.
    void reset() noexcept;

    /// Index of the next point to be emitted.
    [[nodiscard]] std::uint64_t index() const noexcept { return index_; }

    /// Random access: the fraction that next_fraction() would return after
    /// `target` points have been emitted (Gray-code direct formula).
    [[nodiscard]] std::uint32_t fraction_at(std::uint64_t target) const noexcept;

    /// Jump so the next emitted point has index `target`.
    void seek(std::uint64_t target) noexcept;

    /// Convert a 32-bit fraction to a double in [0, 1).
    [[nodiscard]] static double fraction_to_unit(std::uint32_t fraction) noexcept {
        return static_cast<double>(fraction) * 0x1.0p-32;
    }

private:
    std::array<std::uint32_t, sobol_bits> v_{};
    std::uint32_t state_ = 0;
    std::uint64_t index_ = 0;
};

/// Generate the first `count` points of one dimension as doubles.
[[nodiscard]] std::vector<double> sobol_points(const sobol_directions& directions,
                                               std::size_t dim, std::size_t count);

/// Quantize a unit-interval scalar to xi levels: round(u * (xi - 1)).
/// This is the paper's Fig. 3(a) quantization rule.
[[nodiscard]] std::uint8_t quantize_unit(double u, unsigned levels) noexcept;

/// Per-level comparison bounds on the raw 32-bit fractions: bounds[q] is
/// the largest fraction f with quantize_unit(fraction_to_unit(f), levels)
/// <= q, so `q >= quantize(f)` is exactly `f <= bounds[q]`. Built by binary
/// search against quantize_unit itself (monotone in f), so the equivalence
/// holds for every representable fraction — the table that lets the
/// rematerializing encoder replace a stored quantized threshold with one
/// u32 compare. `levels` in [2, 256].
[[nodiscard]] std::vector<std::uint32_t> quantize_bounds(unsigned levels);

/// Dense bank of quantized Sobol thresholds: `dims` dimensions x `samples`
/// points, each quantized to `levels` levels (the BRAM contents of Fig. 3(a)).
///
/// When `scramble_seed` is nonzero, each dimension receives a deterministic
/// digital shift (XOR of the 32-bit fractions with a per-dimension random
/// word). A digital shift preserves every within-dimension equidistribution
/// property while breaking the structured correlations *between* dimensions
/// that algorithmically-initialized direction numbers can exhibit — the
/// role Joe–Kuo property-A optimization plays for MATLAB's generator
/// (DESIGN.md §4.1).
class quantized_sobol_bank {
public:
    quantized_sobol_bank(const sobol_directions& directions, std::size_t dims,
                         std::size_t samples, unsigned levels,
                         std::uint64_t scramble_seed = 0);

    /// Wrap an externally generated threshold bank (row-major dims x
    /// samples, values < levels). Used by the sequence-family ablation to
    /// drive the uHD encoder with Halton/R2/pseudo-random thresholds.
    [[nodiscard]] static quantized_sobol_bank from_raw(std::size_t dims,
                                                       std::size_t samples,
                                                       unsigned levels,
                                                       std::vector<std::uint8_t> data);

    [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
    [[nodiscard]] std::size_t samples() const noexcept { return samples_; }
    [[nodiscard]] unsigned levels() const noexcept { return levels_; }

    /// Quantized thresholds of dimension `d` (length samples()).
    [[nodiscard]] std::span<const std::uint8_t> row(std::size_t d) const;

    /// Whole bank, row-major dims() x samples() — the contiguous layout the
    /// word-parallel block kernels stream through (row stride = samples()).
    [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
        return {data_.data(), data_.size()};
    }

    /// Heap footprint (Table I memory accounting; exact — size(), not
    /// capacity(), so the number gates cleanly in the benches).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return data_.size() * sizeof(std::uint8_t);
    }

private:
    quantized_sobol_bank() = default; // for from_raw

    std::size_t dims_ = 0;
    std::size_t samples_ = 0;
    unsigned levels_ = 0;
    std::vector<std::uint8_t> data_; // row-major dims x samples
};

} // namespace uhd::ld

#endif // UHD_LOWDISC_SOBOL_HPP
