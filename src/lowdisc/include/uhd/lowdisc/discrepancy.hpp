// Uniformity and independence diagnostics for threshold sequences.
//
// These quantify *why* low-discrepancy sequences make better intensity
// thresholds than pseudo-random ones (paper Section II/III): the fraction of
// sequence elements below x converges to x at rate O(log n / n) for LD
// sequences versus O(1/sqrt(n)) for pseudo-random ones, which directly
// bounds the level-hypervector encoding error.
#ifndef UHD_LOWDISC_DISCREPANCY_HPP
#define UHD_LOWDISC_DISCREPANCY_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace uhd::ld {

/// Exact one-dimensional star discrepancy D*_n of points in [0, 1).
[[nodiscard]] double star_discrepancy(std::span<const double> points);

/// Maximum absolute error between empirical CDF and x over a threshold grid
/// of `grid` equally spaced probes (cheap discrepancy proxy for big n).
[[nodiscard]] double cdf_error(std::span<const double> points, std::size_t grid = 256);

/// Pearson correlation between two equally long scalar sequences.
[[nodiscard]] double sequence_correlation(std::span<const double> a,
                                          std::span<const double> b);

/// Chi-square statistic of the points against a uniform histogram with
/// `bins` cells (for a uniform sample, expectation ~= bins - 1).
[[nodiscard]] double chi_square_uniform(std::span<const double> points, std::size_t bins);

} // namespace uhd::ld

#endif // UHD_LOWDISC_DISCREPANCY_HPP
