// Radical-inverse based low-discrepancy sequences: van der Corput, Halton,
// and the R2 additive-recurrence sequence. These are the ablation
// alternatives to Sobol (bench_ablation_sequences) and back the tests that
// check Sobol dimension 0 against the van der Corput reference.
#ifndef UHD_LOWDISC_HALTON_HPP
#define UHD_LOWDISC_HALTON_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uhd::ld {

/// Radical inverse of `index` in `base` (van der Corput for base 2).
[[nodiscard]] double radical_inverse(std::uint64_t index, unsigned base);

/// First `count` points of the van der Corput sequence in `base`.
[[nodiscard]] std::vector<double> van_der_corput(std::size_t count, unsigned base = 2);

/// The n-th prime (1-based: nth_prime(1) == 2), for Halton bases.
[[nodiscard]] unsigned nth_prime(std::size_t n);

/// Multi-dimensional Halton sequence: dimension d uses the (d+1)-th prime.
class halton_sequence {
public:
    explicit halton_sequence(std::size_t dimensions);

    [[nodiscard]] std::size_t dimensions() const noexcept { return bases_.size(); }

    /// Point `index` of dimension `dim`.
    [[nodiscard]] double at(std::uint64_t index, std::size_t dim) const;

    /// First `count` points of one dimension.
    [[nodiscard]] std::vector<double> points(std::size_t dim, std::size_t count) const;

private:
    std::vector<unsigned> bases_;
};

/// R2 sequence (additive recurrence on powers of the generalized golden
/// ratio): x_n(d) = frac((n+1) * alpha_d). Cheap, deterministic, LD.
class r2_sequence {
public:
    explicit r2_sequence(std::size_t dimensions);

    [[nodiscard]] std::size_t dimensions() const noexcept { return alphas_.size(); }

    [[nodiscard]] double at(std::uint64_t index, std::size_t dim) const;

    [[nodiscard]] std::vector<double> points(std::size_t dim, std::size_t count) const;

private:
    std::vector<double> alphas_;
};

} // namespace uhd::ld

#endif // UHD_LOWDISC_HALTON_HPP
