// GF(2) polynomial arithmetic and primitive-polynomial search.
//
// Sobol direction numbers are built from primitive polynomials over GF(2).
// The paper uses MATLAB's built-in Sobol generator (Joe-Kuo direction
// numbers); offline we derive our own: this module enumerates primitive
// polynomials of increasing degree by exhaustive search with an exact
// order test.
//
// A polynomial p of degree d with nonzero constant term is primitive iff
//   x^(2^d - 1) == 1   (mod p)  and
//   x^((2^d-1)/q) != 1 (mod p)  for every prime q dividing 2^d - 1.
// (For odd m, x^m - 1 is squarefree over GF(2) and the order of x modulo a
// reducible p is strictly less than 2^d - 1, so the test is exact.)
//
// Polynomials are encoded as bit masks: bit i is the coefficient of x^i.
#ifndef UHD_LOWDISC_GF2_HPP
#define UHD_LOWDISC_GF2_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uhd::ld {

/// Polynomial over GF(2), encoded with bit i = coefficient of x^i.
using gf2_poly = std::uint64_t;

/// Degree of a nonzero polynomial (index of its highest set bit).
[[nodiscard]] int gf2_degree(gf2_poly p) noexcept;

/// Carry-less product of two polynomials (no reduction).
[[nodiscard]] std::uint64_t gf2_mul(std::uint64_t a, std::uint64_t b) noexcept;

/// Remainder of `a` modulo `mod` (mod != 0).
[[nodiscard]] std::uint64_t gf2_mod(std::uint64_t a, gf2_poly mod) noexcept;

/// (a * b) mod p for polynomials below the degree of p.
[[nodiscard]] std::uint64_t gf2_mulmod(std::uint64_t a, std::uint64_t b, gf2_poly p) noexcept;

/// x^e mod p computed by square-and-multiply.
[[nodiscard]] std::uint64_t gf2_pow_x(std::uint64_t e, gf2_poly p) noexcept;

/// Prime factors (deduplicated) of n >= 2 by trial division.
[[nodiscard]] std::vector<std::uint64_t> prime_factors(std::uint64_t n);

/// Exact primitivity test for polynomials of degree 1..32.
[[nodiscard]] bool is_primitive(gf2_poly p);

/// The first `count` primitive polynomials in (degree, value) order.
/// Degrees up to 16 provide more than 4000 polynomials — enough for one
/// Sobol dimension per pixel of any image size used in the paper.
[[nodiscard]] std::vector<gf2_poly> primitive_polynomials(std::size_t count);

/// Smallest primitive polynomial of exactly `degree` (1 <= degree <= 32).
[[nodiscard]] gf2_poly first_primitive_of_degree(int degree);

} // namespace uhd::ld

#endif // UHD_LOWDISC_GF2_HPP
