// Linear-feedback shift registers.
//
// The paper's baseline HDC uses LFSR modules for pseudo-random hypervector
// generation in hardware (Section IV). This module provides Fibonacci and
// Galois LFSRs with maximal-length tap sets for widths 3..32, a bit-serial
// step() (what the hardware does each cycle) and word/unit conveniences used
// by the software baseline.
#ifndef UHD_LOWDISC_LFSR_HPP
#define UHD_LOWDISC_LFSR_HPP

#include <cstdint>
#include <vector>

namespace uhd::ld {

/// Feedback structure of the shift register.
enum class lfsr_kind {
    fibonacci, ///< external XOR feedback from the tap outputs
    galois,    ///< internal XOR of the output into the tapped stages
};

/// Maximal-length tap positions (1-based, MSB-first convention) for `width`
/// in [3, 32]; throws for other widths.
[[nodiscard]] std::vector<unsigned> maximal_taps(unsigned width);

/// Maximal-length LFSR of `width` bits: period 2^width - 1 over nonzero states.
class lfsr {
public:
    /// `seed` must be nonzero in the low `width` bits (the all-zero state is
    /// the lock-up state); throws otherwise.
    lfsr(unsigned width, std::uint32_t seed, lfsr_kind kind = lfsr_kind::fibonacci);

    [[nodiscard]] unsigned width() const noexcept { return width_; }
    [[nodiscard]] lfsr_kind kind() const noexcept { return kind_; }

    /// Current register contents (low `width` bits).
    [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

    /// Advance one cycle and return the output bit.
    bool step() noexcept;

    /// `bits` successive output bits packed LSB-first (bits <= 32).
    [[nodiscard]] std::uint32_t next_bits(unsigned bits) noexcept;

    /// Full register snapshot interpreted as a value in (0, 1): state / 2^width.
    /// Advances the register one cycle first, like hardware sampling on clk.
    [[nodiscard]] double next_unit() noexcept;

    /// Sequence period (2^width - 1) — verified exhaustively by the tests for
    /// small widths.
    [[nodiscard]] std::uint64_t period() const noexcept {
        return (std::uint64_t{1} << width_) - 1;
    }

private:
    unsigned width_;
    lfsr_kind kind_;
    std::uint32_t mask_;
    std::uint32_t taps_mask_;
    std::uint32_t state_;
};

} // namespace uhd::ld

#endif // UHD_LOWDISC_LFSR_HPP
