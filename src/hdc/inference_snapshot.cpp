#include "uhd/hdc/inference_snapshot.hpp"

#include <cmath>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"

namespace uhd::hdc {

inference_snapshot::inference_snapshot(query_mode mode, std::size_t classes,
                                       std::size_t dim)
    : mode_(mode), mem_(classes, dim) {
    if (mode_ == query_mode::integer) {
        values_.assign(classes * dim, 0);
        norm_sq_.assign(classes, 0.0);
    }
}

std::span<const std::int32_t> inference_snapshot::class_values(std::size_t c) const {
    UHD_REQUIRE(c < classes(), "class index out of range");
    if (mode_ != query_mode::integer) return {};
    return {values_.data() + c * dim(), dim()};
}

double inference_snapshot::class_norm_sq(std::size_t c) const {
    UHD_REQUIRE(c < classes(), "class index out of range");
    return mode_ == query_mode::integer ? norm_sq_[c] : 0.0;
}

void inference_snapshot::store_class_row(std::size_t c, const hypervector& hv) {
    mem_.store(c, hv); // bounds/dim checked by class_memory
    ++version_;
}

void inference_snapshot::store_class_values(std::size_t c,
                                            std::span<const std::int32_t> values) {
    UHD_REQUIRE(c < classes(), "class index out of range");
    if (mode_ != query_mode::integer) return;
    UHD_REQUIRE(values.size() == dim(), "class values dimension mismatch");
    std::copy(values.begin(), values.end(),
              values_.begin() + static_cast<std::ptrdiff_t>(c * dim()));
    norm_sq_[c] = kernels::sum_squares_i32(values.data(), values.size());
    ++version_;
}

namespace {

/// Sign-binarize an encoded query into per-thread packed scratch — the one
/// binarize step shared by the full-scan and cascade read paths, so a
/// packing change can never drift between them (their bit-identity is a
/// tested contract). The scratch is thread_local: concurrent readers
/// sharing one snapshot never share it.
std::span<const std::uint64_t> binarize_query(
    std::span<const std::int32_t> encoded) {
    static thread_local std::vector<std::uint64_t> query_words;
    query_words.resize(kernels::sign_words(encoded.size()));
    kernels::sign_binarize(encoded.data(), encoded.size(), query_words.data());
    return {query_words.data(), query_words.size()};
}

/// Sign-binarize a whole query block into per-thread packed scratch (one
/// row of sign_words(dim) words per query, the same packing as
/// binarize_query) — the block paths' shared binarize step. Distinct
/// scratch from binarize_query so a block call never clobbers a
/// single-query caller's words on the same thread.
std::span<const std::uint64_t> binarize_block(
    std::span<const std::int32_t> encoded, std::size_t n_queries,
    std::size_t dim) {
    static thread_local std::vector<std::uint64_t> block_words;
    const std::size_t words = kernels::sign_words(dim);
    block_words.resize(n_queries * words);
    for (std::size_t q = 0; q < n_queries; ++q) {
        kernels::sign_binarize(encoded.data() + q * dim, dim,
                               block_words.data() + q * words);
    }
    return {block_words.data(), block_words.size()};
}

} // namespace

std::size_t inference_snapshot::predict_encoded(
    std::span<const std::int32_t> encoded) const {
    UHD_REQUIRE(encoded.size() == dim(), "encoded size mismatch");
    if (mode_ == query_mode::integer) {
        const double query_norm_sq =
            kernels::sum_squares_i32(encoded.data(), encoded.size());
        std::size_t best = 0;
        double best_similarity = -2.0;
        for (std::size_t c = 0; c < classes(); ++c) {
            double similarity = 0.0; // zero-norm convention of cosine()
            if (query_norm_sq > 0.0 && norm_sq_[c] > 0.0) {
                similarity = kernels::dot_i32(encoded.data(),
                                              values_.data() + c * dim(),
                                              encoded.size()) /
                             std::sqrt(query_norm_sq * norm_sq_[c]);
            }
            if (similarity > best_similarity) {
                best_similarity = similarity;
                best = c;
            }
        }
        return best;
    }
    return mem_.nearest(binarize_query(encoded));
}

std::size_t inference_snapshot::predict_packed(
    std::span<const std::uint64_t> query_words, std::uint64_t* distance_out) const {
    return mem_.nearest(query_words, distance_out);
}

std::size_t inference_snapshot::predict_dynamic_encoded(
    std::span<const std::int32_t> encoded, const dynamic_query_policy& policy,
    dynamic_query_stats* stats) const {
    UHD_REQUIRE(encoded.size() == dim(), "encoded size mismatch");
    return policy.answer(mem_, binarize_query(encoded), stats);
}

std::size_t inference_snapshot::predict_dynamic_packed(
    std::span<const std::uint64_t> query_words, const dynamic_query_policy& policy,
    dynamic_query_stats* stats) const {
    return policy.answer(mem_, query_words, stats);
}

void inference_snapshot::predict_block(std::span<const std::int32_t> encoded,
                                       std::size_t n_queries,
                                       std::span<std::size_t> out) const {
    UHD_REQUIRE(encoded.size() == n_queries * dim(), "encoded block size mismatch");
    UHD_REQUIRE(out.size() == n_queries, "prediction buffer size mismatch");
    if (n_queries == 0) return;
    if (mode_ == query_mode::integer) {
        // The integer cosine path has no query-GEMM formulation yet — its
        // blocked-dot kernels are per (query, row) — so the block entry
        // point keeps the contract by looping.
        for (std::size_t q = 0; q < n_queries; ++q) {
            out[q] = predict_encoded(encoded.subspan(q * dim(), dim()));
        }
        return;
    }
    mem_.nearest_block(binarize_block(encoded, n_queries, dim()), n_queries, out);
}

void inference_snapshot::predict_packed_block(
    std::span<const std::uint64_t> queries_words, std::size_t n_queries,
    std::span<std::size_t> out) const {
    mem_.nearest_block(queries_words, n_queries, out);
}

void inference_snapshot::predict_dynamic_block(
    std::span<const std::int32_t> encoded, std::size_t n_queries,
    const dynamic_query_policy& policy, std::span<std::size_t> out,
    std::span<dynamic_query_stats> stats) const {
    UHD_REQUIRE(encoded.size() == n_queries * dim(), "encoded block size mismatch");
    policy.answer_block(mem_, binarize_block(encoded, n_queries, dim()), n_queries,
                        out, stats);
}

void inference_snapshot::predict_dynamic_packed_block(
    std::span<const std::uint64_t> queries_words, std::size_t n_queries,
    const dynamic_query_policy& policy, std::span<std::size_t> out,
    std::span<dynamic_query_stats> stats) const {
    policy.answer_block(mem_, queries_words, n_queries, out, stats);
}

bool inference_snapshot::operator==(const inference_snapshot& other) const noexcept {
    return mode_ == other.mode_ && mem_ == other.mem_ && values_ == other.values_ &&
           norm_sq_ == other.norm_sq_;
}

std::size_t inference_snapshot::memory_bytes() const noexcept {
    return mem_.memory_bytes() + values_.capacity() * sizeof(std::int32_t) +
           norm_sq_.capacity() * sizeof(double);
}

} // namespace uhd::hdc
