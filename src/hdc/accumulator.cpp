#include "uhd/hdc/accumulator.hpp"

#include "uhd/common/error.hpp"

namespace uhd::hdc {

std::int32_t accumulator::value(std::size_t i) const {
    UHD_REQUIRE(i < values_.size(), "accumulator index out of range");
    return values_[i];
}

void accumulator::add(const hypervector& v) {
    UHD_REQUIRE(v.dim() == dim(), "hypervector dimension mismatch");
    add_sign_words(v.bits().words());
}

void accumulator::add_sign_words(std::span<const std::uint64_t> words) {
    UHD_REQUIRE(words.size() == (dim() + 63) / 64, "sign word count mismatch");
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        const std::size_t base = w * 64;
        const std::size_t lanes = std::min<std::size_t>(64, dim() - base);
        for (std::size_t j = 0; j < lanes; ++j) {
            // bit 1 encodes -1, bit 0 encodes +1
            values_[base + j] += 1 - 2 * static_cast<std::int32_t>(bits & 1u);
            bits >>= 1;
        }
    }
}

void accumulator::subtract(const hypervector& v) {
    UHD_REQUIRE(v.dim() == dim(), "hypervector dimension mismatch");
    const auto words = v.bits().words();
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        const std::size_t base = w * 64;
        const std::size_t lanes = std::min<std::size_t>(64, dim() - base);
        for (std::size_t j = 0; j < lanes; ++j) {
            values_[base + j] -= 1 - 2 * static_cast<std::int32_t>(bits & 1u);
            bits >>= 1;
        }
    }
}

void accumulator::add(const accumulator& other) {
    UHD_REQUIRE(other.dim() == dim(), "accumulator dimension mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
}

void accumulator::add_values(std::span<const std::int32_t> other) {
    UHD_REQUIRE(other.size() == dim(), "accumulator dimension mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other[i];
}

void accumulator::subtract_values(std::span<const std::int32_t> other) {
    UHD_REQUIRE(other.size() == dim(), "accumulator dimension mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] -= other[i];
}

void accumulator::clear() noexcept {
    for (auto& v : values_) v = 0;
}

hypervector accumulator::sign() const {
    bs::bitstream bits(dim());
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (values_[i] < 0) bits.set_bit(i, true); // bit 1 = -1
    }
    return hypervector(std::move(bits));
}

hypervector majority(std::span<const hypervector> inputs) {
    UHD_REQUIRE(!inputs.empty(), "majority of empty set");
    accumulator acc(inputs.front().dim());
    for (const auto& v : inputs) acc.add(v);
    return acc.sign();
}

} // namespace uhd::hdc
