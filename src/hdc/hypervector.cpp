#include "uhd/hdc/hypervector.hpp"

#include "uhd/common/error.hpp"

namespace uhd::hdc {

hypervector hypervector::random(std::size_t dim, xoshiro256ss& rng) {
    bs::bitstream bits(dim);
    auto words = bits.mutable_words();
    for (auto& w : words) w = rng.next();
    bits.mask_tail();
    return hypervector(std::move(bits));
}

std::int64_t hypervector::dot(const hypervector& other) const {
    UHD_REQUIRE(dim() == other.dim(), "hypervector dimension mismatch");
    const std::int64_t mismatches =
        static_cast<std::int64_t>(bs::hamming_distance(bits_, other.bits_));
    return static_cast<std::int64_t>(dim()) - 2 * mismatches;
}

hypervector bind(const hypervector& a, const hypervector& b) {
    return hypervector(a.bits() ^ b.bits());
}

hypervector permute(const hypervector& v, std::size_t shift) {
    const std::size_t d = v.dim();
    UHD_REQUIRE(d > 0, "permute of empty hypervector");
    shift %= d;
    bs::bitstream out(d);
    for (std::size_t i = 0; i < d; ++i) {
        out.set_bit((i + shift) % d, v.bits().bit(i));
    }
    return hypervector(std::move(out));
}

} // namespace uhd::hdc
