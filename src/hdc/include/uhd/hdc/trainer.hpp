// Mini-batch thread-parallel training engine for the centroid classifier.
//
// Single-pass HDC training is a bundling reduction: every image's encoding
// is added into its class accumulator. Because the bundle is an integer sum
// (raw_sums adds the int32 encodings, binarized_images adds their +-1 sign
// vectors), the reduction is associative and commutative — so the training
// set can be split into contiguous per-worker chunks, each chunk bundled
// into its own private class-accumulator set, and the lane sets reduced in
// fixed class/lane order at the end. The result is bit-identical to the
// sequential per-image loop for every thread count, chunking, and
// mini-batch size: the same determinism contract as predict_batch.
//
// Within a chunk, images are encoded in mini-batches through the encoder's
// batch engine when it has one (uhd_encoder::encode_batch over the
// dataset's contiguous image buffer — the word-parallel block kernels),
// falling back to per-image encode() for encoders that only satisfy the
// minimal contract (dim() + encode()). Mini-batching bounds the encode
// scratch at batch_images * dim int32 per lane regardless of set size.
//
// Train/serve contract: everything here mutates only *training* state —
// the caller's accumulators — never the read state concurrent queries run
// on. A trainer thread that serves traffic while learning owns its
// hd_classifier privately (fit/partial_fit/retrain on this engine), then
// publishes hd_classifier::snapshot() through
// serve::inference_engine::publish — one atomic pointer swap; in-flight
// readers keep answering from the snapshot they already hold.
#ifndef UHD_HDC_TRAINER_HPP
#define UHD_HDC_TRAINER_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/data/dataset.hpp"
#include "uhd/hdc/accumulator.hpp"
#include "uhd/hdc/hypervector.hpp"

namespace uhd::hdc {

/// How image encodings are bundled into class accumulators (shared with
/// hd_classifier, which re-exports this header).
enum class train_mode {
    binarized_images, ///< sign() each image hypervector before bundling
    raw_sums,         ///< bundle the integer accumulators directly
};

/// Tuning knobs for the mini-batch trainer.
struct trainer_options {
    /// Images encoded per mini-batch within each worker lane. Bounds the
    /// per-lane encode scratch at batch_images * dim() int32 values; the
    /// trained result is independent of this value.
    std::size_t batch_images = 64;
};

/// Detected at compile time: encoders with a span batch-encode entry point
/// (count images back-to-back) get the block-kernel batch path.
template <typename Encoder>
concept batch_encoder = requires(const Encoder& e, std::span<const std::uint8_t> imgs,
                                 std::size_t n, std::span<std::int32_t> out) {
    e.encode_batch(imgs, n, out, static_cast<thread_pool*>(nullptr));
};

/// Mini-batch parallel bundling of a dataset into per-class accumulators.
template <typename Encoder>
class batch_trainer {
public:
    /// `mode` follows hd_classifier's train_mode (binarized_images
    /// sign-binarizes each image encoding before bundling, raw_sums adds
    /// the integer encodings directly).
    batch_trainer(const Encoder& encoder, std::size_t classes, train_mode mode,
                  trainer_options options = {})
        : encoder_(&encoder), classes_(classes), mode_(mode), options_(options) {
        UHD_REQUIRE(classes >= 1, "trainer needs at least one class");
        if (options_.batch_images == 0) options_.batch_images = 1;
    }

    /// Encode + bundle the whole dataset into one accumulator per class
    /// (the *delta* of a training pass — callers add it onto their model
    /// state). With a pool the set is split into one contiguous chunk per
    /// worker lane; without one the single chunk runs inline. Bit-identical
    /// for every thread count and batch size.
    [[nodiscard]] std::vector<accumulator> accumulate(const data::dataset& train,
                                                      thread_pool* pool = nullptr) const {
        const std::size_t dim = encoder_->dim();
        const std::size_t n = train.size();
        const std::size_t lanes = pool == nullptr ? 1 : pool->size() + 1;
        const std::size_t chunks = n == 0 ? 0 : (n < lanes ? n : lanes);

        // One private class-accumulator set per chunk: no shared mutable
        // state during the parallel phase.
        std::vector<std::vector<accumulator>> lane_acc(
            chunks, std::vector<accumulator>(classes_, accumulator(dim)));

        // Chunk c covers [c*base + min(c, extra), ...) — the same contiguous
        // partition for every pool size, so lane_acc[c] holds the bundle of
        // a fixed image range regardless of which worker ran it.
        const std::size_t base = chunks == 0 ? 0 : n / chunks;
        const std::size_t extra = chunks == 0 ? 0 : n % chunks;
        thread_pool::maybe_parallel_for(
            pool, chunks, [&](std::size_t chunk_begin, std::size_t chunk_end) {
                for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
                    const std::size_t begin = c * base + (c < extra ? c : extra);
                    const std::size_t end = begin + base + (c < extra ? 1 : 0);
                    bundle_range(train, begin, end, lane_acc[c]);
                }
            });

        // Fixed class/lane reduction order. Integer bundling commutes, so
        // this matches the sequential per-image order exactly; keeping the
        // order fixed anyway makes the contract checkable by inspection.
        std::vector<accumulator> out(classes_, accumulator(dim));
        for (std::size_t cls = 0; cls < classes_; ++cls) {
            for (std::size_t lane = 0; lane < chunks; ++lane) {
                out[cls].add(lane_acc[lane][cls]);
            }
        }
        return out;
    }

private:
    /// Bundle images [begin, end) into `acc` (one accumulator per class),
    /// encoding in mini-batches of options_.batch_images.
    void bundle_range(const data::dataset& train, std::size_t begin, std::size_t end,
                      std::vector<accumulator>& acc) const {
        const std::size_t dim = encoder_->dim();
        const std::size_t batch = options_.batch_images;
        std::vector<std::int32_t> encoded(std::min(batch, end - begin) * dim);
        std::vector<std::uint64_t> sign_scratch(kernels::sign_words(dim));
        for (std::size_t b = begin; b < end; b += batch) {
            const std::size_t count = std::min(batch, end - b);
            const std::span<std::int32_t> out(encoded.data(), count * dim);
            if constexpr (batch_encoder<Encoder>) {
                encoder_->encode_batch(train.images(b, count), count, out, nullptr);
            } else {
                for (std::size_t i = 0; i < count; ++i) {
                    encoder_->encode(train.image(b + i), out.subspan(i * dim, dim));
                }
            }
            for (std::size_t i = 0; i < count; ++i) {
                bundle_one(acc[train.label(b + i)], out.subspan(i * dim, dim),
                           sign_scratch);
            }
        }
    }

    /// Same semantics as hd_classifier's per-image bundling step: raw_sums
    /// adds the integer encoding, binarized_images sign-binarizes it
    /// word-parallel first (the kernel zeroes the tail bits, satisfying the
    /// add_sign_words contract; `sign_scratch` is the per-chunk reused
    /// packed buffer, so bundling allocates nothing per image).
    void bundle_one(accumulator& into, std::span<const std::int32_t> encoded,
                    std::vector<std::uint64_t>& sign_scratch) const {
        if (mode_ == train_mode::raw_sums) {
            into.add_values(encoded);
            return;
        }
        kernels::sign_binarize(encoded.data(), encoded.size(), sign_scratch.data());
        into.add_sign_words(sign_scratch);
    }

    const Encoder* encoder_;
    std::size_t classes_;
    train_mode mode_;
    trainer_options options_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_TRAINER_HPP
