// Bundling accumulator: the integer-domain hypervector used between
// binding and binarization (the "non-quantized class hypervector" of the
// paper). Supports adding packed hypervectors, other accumulators, and the
// sign/threshold binarization that produces class hypervectors.
#ifndef UHD_HDC_ACCUMULATOR_HPP
#define UHD_HDC_ACCUMULATOR_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/hdc/hypervector.hpp"

namespace uhd::hdc {

/// Integer accumulator over hypervector dimensions (bundling domain).
class accumulator {
public:
    accumulator() = default;

    /// Zero accumulator of dimension `dim`.
    explicit accumulator(std::size_t dim) : values_(dim, 0) {}

    [[nodiscard]] std::size_t dim() const noexcept { return values_.size(); }

    [[nodiscard]] std::int32_t value(std::size_t i) const;

    [[nodiscard]] std::span<const std::int32_t> values() const noexcept {
        return {values_.data(), values_.size()};
    }
    [[nodiscard]] std::span<std::int32_t> values() noexcept {
        return {values_.data(), values_.size()};
    }

    /// Add a packed hypervector element-wise (+1/-1 per dimension).
    void add(const hypervector& v);

    /// Add a +-1 vector given as ceil(dim/64) packed sign words (bit 1 =
    /// -1, tail bits beyond dim() zero — the sign_binarize output). Same
    /// semantics as add(hypervector) without materializing one: the
    /// allocation-free bundling path of the training engine.
    void add_sign_words(std::span<const std::uint64_t> words);

    /// Subtract a packed hypervector element-wise.
    void subtract(const hypervector& v);

    /// Add another accumulator element-wise.
    void add(const accumulator& other);

    /// Add a raw integer vector element-wise (pre-binarization bundling).
    void add_values(std::span<const std::int32_t> other);

    /// Subtract a raw integer vector element-wise.
    void subtract_values(std::span<const std::int32_t> other);

    /// Reset all dimensions to zero.
    void clear() noexcept;

    /// Binarize with the sign function: value >= 0 maps to +1.
    /// (Ties to +1, matching the hardware's popcount >= TOB rule.)
    [[nodiscard]] hypervector sign() const;

    /// Heap footprint (Table I memory accounting).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return values_.capacity() * sizeof(std::int32_t);
    }

private:
    std::vector<std::int32_t> values_;
};

/// Majority (bundling + sign) of an odd or even set of hypervectors;
/// even-count ties resolve to +1.
[[nodiscard]] hypervector majority(std::span<const hypervector> inputs);

} // namespace uhd::hdc

#endif // UHD_HDC_ACCUMULATOR_HPP
