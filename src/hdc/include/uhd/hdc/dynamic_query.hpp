// Dynamic-dimension early-exit inference — the "Dynamic" half of uHD's
// title as a first-class query path: a query is first answered from a
// D/8-bit prefix of every packed class row, and only escalates to D/4,
// D/2, and finally the full D when the top-1/top-2 Hamming margin of the
// truncated scan is too small to be trusted.
//
// The idea follows Schmuck et al.'s combinational associative memory
// (Hamming search degrades gracefully under dimension truncation) and the
// dimension/accuracy trade-off framing of the HDC literature: on easy
// queries the class gap is visible in the first few hundred bits, so most
// of the memory never needs to be read. Margin thresholds are calibrated
// from held-out data for a target agreement rate with the full-D answer.
//
// Determinism: the cascade extends one running distance per class
// incrementally (kernels::hamming_extend_words), so its full-D stage is
// bit-identical to class_memory::nearest() — same word order, same
// first-wins tie rule. Calibration is a deterministic function of the
// memory and the calibration queries (no RNG, no data-dependent float
// accumulation order).
#ifndef UHD_HDC_DYNAMIC_QUERY_HPP
#define UHD_HDC_DYNAMIC_QUERY_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/hdc/class_memory.hpp"

namespace uhd::hdc {

class inference_snapshot; // the immutable read state policies serve against

/// One stage of the early-exit cascade.
struct dynamic_stage {
    /// Prefix window (64-bit words per class row) this stage scans up to.
    std::size_t window_words = 0;
    /// Exit here when runner_up - best >= margin_threshold (in window bits).
    /// dynamic_query_policy::disabled_threshold means never exit here.
    std::uint64_t margin_threshold = 0;
};

/// Per-query outcome of a cascade query (for stats and benchmarking).
struct dynamic_query_stats {
    std::size_t exit_stage = 0;    ///< index into stages() that answered
    std::size_t window_words = 0;  ///< prefix window the answer used
    std::size_t words_scanned = 0; ///< packed words XOR+popcounted
                                   ///< (= classes * window_words; windows
                                   ///< grow incrementally, never re-scanned)
};

/// Aggregate cascade statistics over many queries — the one definition of
/// the exit-histogram / words-scanned / agreement accounting shared by the
/// benches and demos.
struct dynamic_query_summary {
    std::vector<std::size_t> exits; ///< queries answered per stage
    std::uint64_t words_scanned = 0;
    std::size_t queries = 0;
    std::size_t agreements = 0; ///< answers matching full-D inference

    explicit dynamic_query_summary(std::size_t stages) : exits(stages, 0) {}

    /// Fold in one query's outcome.
    void record(const dynamic_query_stats& stats, bool agreed_with_full) {
        ++exits[stats.exit_stage];
        words_scanned += stats.words_scanned;
        ++queries;
        if (agreed_with_full) ++agreements;
    }

    /// Packed words XOR+popcounted per query, averaged.
    [[nodiscard]] double avg_words_scanned() const noexcept {
        return queries == 0 ? 0.0
                            : static_cast<double>(words_scanned) /
                                  static_cast<double>(queries);
    }

    /// Fraction of full-D argmax agreement.
    [[nodiscard]] double agreement_rate() const noexcept {
        return queries == 0 ? 1.0
                            : static_cast<double>(agreements) /
                                  static_cast<double>(queries);
    }
};

/// Calibrated early-exit policy over a packed class memory.
///
/// A policy is a ladder of prefix windows with per-stage margin
/// thresholds; the final stage always covers every word and always
/// answers. Policies are plain data: one policy can serve any number of
/// concurrent queries against any class_memory with the same word count.
class dynamic_query_policy {
public:
    /// Threshold value that disables early exit at a stage.
    static constexpr std::uint64_t disabled_threshold = ~std::uint64_t{0};

    /// Single full-scan stage: answer() is exactly nearest().
    [[nodiscard]] static dynamic_query_policy full_scan(const class_memory& mem);

    /// The D/8 -> D/4 -> D/2 -> D window ladder (deduplicated, zero-word
    /// windows dropped) with every early stage disabled. calibrate() picks
    /// the thresholds that enable them.
    [[nodiscard]] static dynamic_query_policy ladder(const class_memory& mem);

    /// Snapshot overloads: policies are plain data keyed only on the row
    /// width, so one policy built for a snapshot serves every later
    /// snapshot of the same geometry — calibrate once, publish many times.
    [[nodiscard]] static dynamic_query_policy full_scan(
        const inference_snapshot& snap);
    [[nodiscard]] static dynamic_query_policy ladder(const inference_snapshot& snap);
    [[nodiscard]] static dynamic_query_policy calibrate(
        const inference_snapshot& snap, std::span<const std::uint64_t> queries,
        std::size_t count, double target_agreement);

    /// Calibrate the ladder on `count` held-out packed queries (each
    /// mem.words_per_class() words, back-to-back in `queries`, same packing
    /// as nearest()). For each early stage, the chosen threshold is the
    /// smallest margin T such that among calibration queries whose stage
    /// margin reaches T, the truncated argmin agrees with the full-D answer
    /// at rate >= target_agreement; stages where no threshold reaches the
    /// target stay disabled. Stages are calibrated independently on the
    /// whole calibration set (not conditioned on earlier exits), which is
    /// the conservative choice: queries that would have exited earlier only
    /// ever see *larger* windows than the one they were calibrated at.
    [[nodiscard]] static dynamic_query_policy calibrate(
        const class_memory& mem, std::span<const std::uint64_t> queries,
        std::size_t count, double target_agreement);

    /// The window ladder (ascending windows; the last stage is full-width
    /// with threshold 0).
    [[nodiscard]] std::span<const dynamic_stage> stages() const noexcept {
        return {stages_.data(), stages_.size()};
    }

    /// Words per class row the policy was built for.
    [[nodiscard]] std::size_t full_words() const noexcept {
        return stages_.empty() ? 0 : stages_.back().window_words;
    }

    /// Answer a packed query through the cascade: extend the per-class
    /// distances stage by stage and stop at the first stage whose margin
    /// clears its threshold (the final stage always answers). `query_words`
    /// must hold mem.words_per_class() words with tail bits zero. When every
    /// early stage is disabled — or the exit lands on the final stage — the
    /// result is bit-identical to mem.nearest(query_words).
    [[nodiscard]] std::size_t answer(const class_memory& mem,
                                     std::span<const std::uint64_t> query_words,
                                     dynamic_query_stats* stats = nullptr) const;

    /// Answer against a snapshot's packed memory (see the class_memory
    /// overload for the contract).
    [[nodiscard]] std::size_t answer(const inference_snapshot& snap,
                                     std::span<const std::uint64_t> query_words,
                                     dynamic_query_stats* stats = nullptr) const;

    /// Answer a block of `n_queries` packed queries (mem.words_per_class()
    /// words each, back-to-back in `queries_words`) through the cascade in
    /// one stage-synchronized sweep: every stage extends the distances of
    /// all still-active queries with one register-blocked kernel call
    /// (kernels::hamming_block_extend), queries whose margin clears the
    /// stage threshold are answered, and the survivors are compacted so the
    /// next stage streams each class row once for the whole remainder.
    /// out[q] — and, when `stats` is non-empty (it must then hold n_queries
    /// slots), stats[q] — are bit-identical to answer(query q): the
    /// per-query distances, margins, and exit decisions are untouched by
    /// the blocking.
    void answer_block(const class_memory& mem,
                      std::span<const std::uint64_t> queries_words,
                      std::size_t n_queries, std::span<std::size_t> out,
                      std::span<dynamic_query_stats> stats = {}) const;

    /// Block cascade against a snapshot's packed memory.
    void answer_block(const inference_snapshot& snap,
                      std::span<const std::uint64_t> queries_words,
                      std::size_t n_queries, std::span<std::size_t> out,
                      std::span<dynamic_query_stats> stats = {}) const;

private:
    std::vector<dynamic_stage> stages_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_DYNAMIC_QUERY_HPP
