// Bipolar hypervector: the basic HDC datatype.
//
// A hypervector is a D-dimensional vector of +1/-1 entries, stored packed:
// bit b represents the value (-1)^b, so bit 0 = +1 and bit 1 = -1. Under
// this mapping, element-wise multiplication (binding) is bit-wise XOR —
// exactly the paper's Fig. 1(b) convention — and the dot product is
// D - 2 * hamming_distance.
#ifndef UHD_HDC_HYPERVECTOR_HPP
#define UHD_HDC_HYPERVECTOR_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "uhd/bitstream/bitstream.hpp"
#include "uhd/common/rng.hpp"

namespace uhd::hdc {

/// Packed bipolar hypervector of fixed dimension.
class hypervector {
public:
    hypervector() = default;

    /// All-(+1) hypervector of dimension `dim`.
    explicit hypervector(std::size_t dim) : bits_(dim) {}

    /// Wrap an existing packed bitstream (bit 1 = -1).
    explicit hypervector(bs::bitstream bits) : bits_(std::move(bits)) {}

    /// i.i.d. random hypervector (each element +-1 with probability 1/2).
    [[nodiscard]] static hypervector random(std::size_t dim, xoshiro256ss& rng);

    [[nodiscard]] std::size_t dim() const noexcept { return bits_.size(); }

    /// Element i as +1 or -1.
    [[nodiscard]] int element(std::size_t i) const { return bits_.bit(i) ? -1 : +1; }

    /// Set element i to +1 (value >= 0) or -1 (value < 0).
    void set_element(std::size_t i, int value) { bits_.set_bit(i, value < 0); }

    /// Underlying packed representation (bit 1 = -1).
    [[nodiscard]] const bs::bitstream& bits() const noexcept { return bits_; }
    [[nodiscard]] bs::bitstream& bits() noexcept { return bits_; }

    /// Number of -1 entries.
    [[nodiscard]] std::size_t count_negative() const noexcept { return bits_.popcount(); }

    /// Number of +1 entries.
    [[nodiscard]] std::size_t count_positive() const noexcept {
        return dim() - count_negative();
    }

    /// Dot product with another hypervector of the same dimension.
    [[nodiscard]] std::int64_t dot(const hypervector& other) const;

    /// Element-wise negation.
    [[nodiscard]] hypervector operator-() const { return hypervector(~bits_); }

    [[nodiscard]] bool operator==(const hypervector&) const noexcept = default;

    /// Heap footprint (Table I memory accounting).
    [[nodiscard]] std::size_t memory_bytes() const noexcept { return bits_.memory_bytes(); }

private:
    bs::bitstream bits_;
};

/// Binding (element-wise bipolar multiplication): bit-wise XOR.
[[nodiscard]] hypervector bind(const hypervector& a, const hypervector& b);

/// Cyclic permutation by `shift` positions (HDC's sequence-encoding op).
[[nodiscard]] hypervector permute(const hypervector& v, std::size_t shift);

} // namespace uhd::hdc

#endif // UHD_HDC_HYPERVECTOR_HPP
