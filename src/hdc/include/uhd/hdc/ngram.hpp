// N-gram sequence encoding — the classic HDC text/signal pipeline
// (Rahimi et al., the paper's reference [3]), built from the same bind /
// permute / bundle primitives as the image system. Included because the
// paper positions HDC for NLP as well as vision; this exercises the
// library's generality beyond pixel encoding.
//
// A sequence s_1..s_T over a finite alphabet is encoded as
//   bundle over t of  bind( rho^{n-1}(V[s_t]), ..., rho(V[s_{t+n-2}]), V[s_{t+n-1}] )
// where V is a random symbol item memory and rho the cyclic permutation.
#ifndef UHD_HDC_NGRAM_HPP
#define UHD_HDC_NGRAM_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/hdc/accumulator.hpp"
#include "uhd/hdc/hypervector.hpp"

namespace uhd::hdc {

/// Random item memory over a symbolic alphabet.
class symbol_item_memory {
public:
    /// `alphabet` random hypervectors of dimension `dim` from `seed`.
    symbol_item_memory(std::size_t alphabet, std::size_t dim, std::uint64_t seed);

    [[nodiscard]] std::size_t alphabet() const noexcept { return vectors_.size(); }
    [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

    /// Hypervector of symbol `s`; throws when s >= alphabet().
    [[nodiscard]] const hypervector& vector(std::size_t s) const;

    /// Heap footprint.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    std::size_t dim_;
    std::vector<hypervector> vectors_;
};

/// Sliding-window n-gram encoder over a symbol item memory.
class ngram_encoder {
public:
    /// `n` is the window length (n >= 1; n = 3 is the classic trigram).
    ngram_encoder(const symbol_item_memory& symbols, std::size_t n);

    [[nodiscard]] std::size_t n() const noexcept { return n_; }
    [[nodiscard]] std::size_t dim() const noexcept { return symbols_->dim(); }

    /// Hypervector of one window starting at sequence[offset].
    [[nodiscard]] hypervector window(std::span<const std::size_t> sequence,
                                     std::size_t offset) const;

    /// Bundle of all windows of the sequence (integer accumulator).
    /// The sequence must contain at least n symbols.
    [[nodiscard]] accumulator encode(std::span<const std::size_t> sequence) const;

    /// Binarized sequence hypervector.
    [[nodiscard]] hypervector encode_sign(std::span<const std::size_t> sequence) const;

private:
    const symbol_item_memory* symbols_;
    std::size_t n_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_NGRAM_HPP
