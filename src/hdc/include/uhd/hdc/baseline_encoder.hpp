// Baseline HDC image encoder (paper Fig. 1): per-pixel binding of position
// and level hypervectors, bundled over all pixels.
//
// This is the comparison target for every experiment: it needs H position
// hypervectors and 2^n level hypervectors in memory, performs H binding
// multiplications (XORs) per image, and — to reach good accuracy — must be
// re-generated iteratively (i = 1..100) with fresh randomness, which uHD
// eliminates.
#ifndef UHD_HDC_BASELINE_ENCODER_HPP
#define UHD_HDC_BASELINE_ENCODER_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "uhd/data/dataset.hpp"
#include "uhd/hdc/accumulator.hpp"
#include "uhd/hdc/item_memory.hpp"

namespace uhd::hdc {

/// Configuration of the baseline encoder.
struct baseline_config {
    std::size_t dim = 1024;          ///< hypervector dimension D
    std::size_t levels = 256;        ///< 2^n intensity levels (n = 8)
    randomness_source source = randomness_source::xoshiro;
    std::uint64_t seed = 1;          ///< iteration seed (regenerates P and L)
    /// Keep the item memories resident (stored) or regenerate rows on the
    /// fly from per-row generator state (rematerialize; bit-identical).
    bank_mode bank = bank_mode::stored;
};

/// Position x Level encoder with packed item memories.
class baseline_encoder {
public:
    baseline_encoder(const baseline_config& config, data::image_shape shape);

    /// Hypervector dimension D.
    [[nodiscard]] std::size_t dim() const noexcept { return config_.dim; }

    /// Pixel count H of the images this encoder accepts.
    [[nodiscard]] std::size_t pixels() const noexcept { return shape_.pixels(); }

    /// Image shape this encoder was built for.
    [[nodiscard]] const data::image_shape& shape() const noexcept { return shape_; }

    /// Active configuration.
    [[nodiscard]] const baseline_config& config() const noexcept { return config_; }

    /// Regenerate P and L with a new seed (one "iteration" of the paper's
    /// iterative hypervector search).
    void reseed(std::uint64_t seed);

    /// Encode a grayscale image: out[d] = sum_p (P_p * L_{k(x_p)})[d].
    /// `image` must have pixels() values; `out` must have dim() entries and
    /// is overwritten.
    void encode(std::span<const std::uint8_t> image, std::span<std::int32_t> out) const;

    /// Encode and binarize (the image hypervector the hardware emits).
    [[nodiscard]] hypervector encode_sign(std::span<const std::uint8_t> image) const;

    /// Item memories (for tests and the hardware model).
    [[nodiscard]] const position_item_memory& positions() const noexcept {
        return *positions_;
    }
    [[nodiscard]] const level_item_memory& level_memory() const noexcept {
        return *levels_;
    }

    /// Heap footprint of the generated hypervector memories — the dominant
    /// dynamic-memory term in Table I's baseline row.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    baseline_config config_;
    data::image_shape shape_;
    // unique_ptr-free: reconstructed in place on reseed via std::optional.
    std::optional<position_item_memory> positions_;
    std::optional<level_item_memory> levels_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_BASELINE_ENCODER_HPP
