// Immutable, versioned inference state — the read half of the
// train/serve split.
//
// The paper's pitch is *dynamic* HDC: single-pass training and online
// partial_fit updates on the device that answers queries. That only works
// at scale if the query path never touches mutable training state. An
// inference_snapshot is everything inference needs and nothing training
// mutates: the packed class memory (binarized class rows), the integer
// class rows with their cached norms (integer query mode), and the
// dim/classes/mode metadata — the finalized associative-memory artifact
// the combinational-AM literature (Schmuck et al.) treats as distinct
// from training.
//
// Lifecycle (RCU-style):
//   1. a trainer (hd_classifier / uhd_model) finalizes its accumulators
//      into its private snapshot and hands out copies via snapshot();
//   2. a copy is published to readers as shared_ptr<const
//      inference_snapshot> (serve::inference_engine::publish swaps one
//      atomic pointer — readers never wait on the trainer);
//   3. readers answer queries from the const snapshot they hold; it stays
//      valid until the last reader drops it, no matter how many newer
//      snapshots were published meanwhile.
//
// The type itself exposes store_* mutators for the single writer building
// the next version; const-ness is the immutability boundary — everything
// published is shared as const and never written again.
//
// Bit-identity contract: predict_encoded / predict_dynamic_* answer
// exactly like hd_classifier's pre-snapshot read paths for every backend
// (the classifier's own paths now delegate here, and
// tests/test_inference_snapshot.cpp holds copies to the live state).
#ifndef UHD_HDC_INFERENCE_SNAPSHOT_HPP
#define UHD_HDC_INFERENCE_SNAPSHOT_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/hdc/class_memory.hpp"
#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/hypervector.hpp"

namespace uhd::hdc {

/// How a query is compared against the trained classes. (Defined here —
/// the snapshot is the read state — and re-exported by classifier.hpp.)
enum class query_mode {
    binarized, ///< sign() the query, Hamming-argmin over the packed rows
    integer,   ///< cosine between the raw query and integer class rows
};

/// Versioned, cheaply copyable inference state: packed class memory,
/// integer class rows + cached norms (integer mode), and metadata.
class inference_snapshot {
public:
    inference_snapshot() = default;

    /// Empty state for `classes` classes of dimension `dim` (every class
    /// all-(+1), zero integer rows). Integer-row storage is allocated only
    /// for query_mode::integer — binarized serving carries just the packed
    /// rows.
    inference_snapshot(query_mode mode, std::size_t classes, std::size_t dim);

    [[nodiscard]] query_mode mode() const noexcept { return mode_; }
    [[nodiscard]] std::size_t classes() const noexcept { return mem_.classes(); }
    [[nodiscard]] std::size_t dim() const noexcept { return mem_.dim(); }
    [[nodiscard]] std::size_t words_per_class() const noexcept {
        return mem_.words_per_class();
    }

    /// Mutation counter: bumped by every store_* call, stamped into copies.
    /// Version is publication metadata, not state — operator== ignores it.
    [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

    /// Packed associative memory over the binarized class rows.
    [[nodiscard]] const class_memory& memory() const noexcept { return mem_; }

    /// Integer row of class `c` (empty span in binarized mode).
    [[nodiscard]] std::span<const std::int32_t> class_values(std::size_t c) const;

    /// Cached squared norm of class `c`'s integer row (0.0 in binarized
    /// mode — never read there).
    [[nodiscard]] double class_norm_sq(std::size_t c) const;

    // --- writer API -------------------------------------------------------
    //
    // For the single trainer building the next version; published copies
    // are shared as shared_ptr<const inference_snapshot> and never mutated.

    /// Overwrite class `c`'s packed row with a binarized hypervector.
    void store_class_row(std::size_t c, const hypervector& hv);

    /// Overwrite class `c`'s integer row and refresh its cached norm.
    /// No-op in binarized mode (the integer rows are never read there).
    void store_class_values(std::size_t c, std::span<const std::int32_t> values);

    // --- read paths -------------------------------------------------------

    /// Predict from an already-encoded accumulator. Binarized mode:
    /// word-parallel sign-binarize + Hamming-argmin over the packed class
    /// memory. Integer mode: blocked dot products against the integer class
    /// rows with the cached norms (cosine argmax, first-wins). Bit-identical
    /// to hd_classifier::predict_encoded on the same state, per backend.
    [[nodiscard]] std::size_t predict_encoded(
        std::span<const std::int32_t> encoded) const;

    /// Answer an already-packed binarized query (nearest packed row).
    [[nodiscard]] std::size_t predict_packed(
        std::span<const std::uint64_t> query_words,
        std::uint64_t* distance_out = nullptr) const;

    /// Dynamic-dimension inference from an encoded accumulator: sign-
    /// binarize and answer through the early-exit cascade. Always answers
    /// from the packed memory regardless of mode(); the full-D stage is
    /// bit-identical to binarized-mode predict_encoded.
    [[nodiscard]] std::size_t predict_dynamic_encoded(
        std::span<const std::int32_t> encoded, const dynamic_query_policy& policy,
        dynamic_query_stats* stats = nullptr) const;

    /// Dynamic-dimension inference on an already-packed query.
    [[nodiscard]] std::size_t predict_dynamic_packed(
        std::span<const std::uint64_t> query_words,
        const dynamic_query_policy& policy,
        dynamic_query_stats* stats = nullptr) const;

    // --- block read paths -------------------------------------------------
    //
    // Multi-query entry points: `n_queries` queries back-to-back in one
    // contiguous buffer, answered with the register-blocked query-GEMM
    // kernels so each packed class row is streamed once per query tile
    // instead of once per query. Every out[q] is bit-identical to the
    // corresponding single-query call — blocking changes memory traffic,
    // never answers.

    /// Predict a block of already-encoded accumulators (`n_queries` x dim()
    /// int32 values back-to-back). Binarized mode packs every query and
    /// answers with one block Hamming-argmin; integer mode falls back to
    /// the per-query cosine path (its blocked-dot kernels are per-row).
    void predict_block(std::span<const std::int32_t> encoded,
                       std::size_t n_queries, std::span<std::size_t> out) const;

    /// Predict a block of already-packed binarized queries
    /// (words_per_class() words each, back-to-back).
    void predict_packed_block(std::span<const std::uint64_t> queries_words,
                              std::size_t n_queries,
                              std::span<std::size_t> out) const;

    /// Dynamic-dimension inference on a block of encoded accumulators:
    /// sign-binarize every query and run the stage-synchronized block
    /// cascade (dynamic_query_policy::answer_block). When `stats` is
    /// non-empty it must hold n_queries slots.
    void predict_dynamic_block(std::span<const std::int32_t> encoded,
                               std::size_t n_queries,
                               const dynamic_query_policy& policy,
                               std::span<std::size_t> out,
                               std::span<dynamic_query_stats> stats = {}) const;

    /// Block cascade on already-packed queries.
    void predict_dynamic_packed_block(
        std::span<const std::uint64_t> queries_words, std::size_t n_queries,
        const dynamic_query_policy& policy, std::span<std::size_t> out,
        std::span<dynamic_query_stats> stats = {}) const;

    /// Payload equality: mode, geometry, packed rows, integer rows, norms.
    /// version() is deliberately excluded — it orders publications of one
    /// trainer, it does not describe the state (a saved and a reloaded
    /// model reach identical payloads through different mutation counts).
    [[nodiscard]] bool operator==(const inference_snapshot& other) const noexcept;

    /// Heap footprint (packed rows + integer rows + norms).
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    std::uint64_t version_ = 0;
    query_mode mode_ = query_mode::binarized;
    class_memory mem_;
    std::vector<std::int32_t> values_; ///< classes x dim, integer mode only
    std::vector<double> norm_sq_;      ///< per class, integer mode only
};

} // namespace uhd::hdc

#endif // UHD_HDC_INFERENCE_SNAPSHOT_HPP
