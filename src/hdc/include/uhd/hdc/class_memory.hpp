// Packed associative memory over binarized class hypervectors — the
// software analogue of the combinational associative-memory inference
// stage of dense binary HDC hardware (Schmuck et al.): all class vectors
// are stored contiguously row-major as 64-bit words, and a query is
// answered with one pass of XOR + popcount per word, returning the class
// with the minimum Hamming distance.
//
// Ties resolve to the lowest class index, which is bit-identical to the
// first-wins argmax of the per-class cosine scan it replaces (cosine is
// strictly decreasing in Hamming distance for fixed D).
#ifndef UHD_HDC_CLASS_MEMORY_HPP
#define UHD_HDC_CLASS_MEMORY_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "uhd/hdc/hypervector.hpp"

namespace uhd::hdc {

/// Row-major packed storage of binarized class hypervectors with a
/// Hamming-argmin associative search.
class class_memory {
public:
    class_memory() = default;

    /// Memory for `classes` rows of `dim` packed sign bits each (all zero,
    /// i.e. every class all-(+1), until store()d).
    class_memory(std::size_t classes, std::size_t dim);

    [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
    [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

    /// 64-bit words per class row (ceil(dim / 64)).
    [[nodiscard]] std::size_t words_per_class() const noexcept { return words_; }

    /// Overwrite row `c` with the packed bits of a binarized hypervector.
    void store(std::size_t c, const hypervector& hv);

    /// Packed row of class `c` (tail bits beyond dim() are zero).
    [[nodiscard]] std::span<const std::uint64_t> row(std::size_t c) const;

    /// All rows back-to-back (classes() * words_per_class() words).
    [[nodiscard]] std::span<const std::uint64_t> rows() const noexcept {
        return {rows_.data(), rows_.size()};
    }

    /// Index of the row nearest to the packed query (minimum Hamming
    /// distance, lowest index on ties). `query_words` must hold
    /// words_per_class() words with tail bits zero. When `distance_out`
    /// is non-null, receives the winning distance.
    [[nodiscard]] std::size_t nearest(std::span<const std::uint64_t> query_words,
                                      std::uint64_t* distance_out = nullptr) const;

    /// Convenience overload over a packed hypervector query.
    [[nodiscard]] std::size_t nearest(const hypervector& query,
                                      std::uint64_t* distance_out = nullptr) const;

    /// Answer a block of `n_queries` packed queries (words_per_class()
    /// words each, back-to-back in `queries_words`) in one register-blocked
    /// pass over the class rows (kernels::hamming_block_argmin2_prefix over
    /// the full row width). out[q] is bit-identical to
    /// nearest(query q) — same distances, same first-wins tie rule — the
    /// blocking only changes how many queries share each streamed row.
    /// When `distances_out` is non-null it receives the n_queries winning
    /// distances.
    void nearest_block(std::span<const std::uint64_t> queries_words,
                       std::size_t n_queries, std::span<std::size_t> out,
                       std::uint64_t* distances_out = nullptr) const;

    /// Result of a prefix-window associative search (nearest_prefix).
    struct prefix_result {
        std::size_t index;       ///< nearest row over the window (first-wins)
        std::uint64_t distance;  ///< its Hamming distance over the window
        std::uint64_t margin;    ///< runner-up distance minus winning distance
                                 ///< (all-ones when the memory has one row)
    };

    /// Associative search truncated to the first `window_words` words of
    /// every row (the first 64 * window_words of the dim() sign bits): the
    /// dynamic-dimension query primitive. A full-window call
    /// (window_words == words_per_class()) is bit-identical to nearest(),
    /// and the margin is the top-1/top-2 Hamming gap the early-exit cascade
    /// thresholds on. `query_words` must hold at least `window_words` words
    /// with the same packing as nearest().
    [[nodiscard]] prefix_result nearest_prefix(
        std::span<const std::uint64_t> query_words, std::size_t window_words) const;

    /// Payload equality: same geometry and identical packed rows. The tail
    /// bits beyond dim() are zero by construction (store() copies from
    /// hypervectors holding the bitstream tail invariant), so word-wise
    /// comparison is exact bit-level row equality. This is what makes a
    /// class_memory a snapshot-friendly value type: copy = one vector copy,
    /// equality = one vector compare.
    [[nodiscard]] bool operator==(const class_memory& other) const noexcept;

    /// Heap footprint of the packed rows (Table I memory accounting).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return rows_.capacity() * sizeof(std::uint64_t);
    }

private:
    std::size_t classes_ = 0;
    std::size_t dim_ = 0;
    std::size_t words_ = 0;
    std::vector<std::uint64_t> rows_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_CLASS_MEMORY_HPP
