// Similarity metrics for inference (the paper uses cosine similarity
// between the test hypervector and each class hypervector).
#ifndef UHD_HDC_SIMILARITY_HPP
#define UHD_HDC_SIMILARITY_HPP

#include <cstdint>
#include <span>

#include "uhd/hdc/hypervector.hpp"

namespace uhd::hdc {

/// Cosine similarity of two binarized hypervectors, in [-1, 1].
/// For bipolar vectors this equals dot / D.
[[nodiscard]] double cosine(const hypervector& a, const hypervector& b);

/// Cosine similarity of two integer accumulators.
/// Returns 0 when either vector has zero norm.
[[nodiscard]] double cosine(std::span<const std::int32_t> a,
                            std::span<const std::int32_t> b);

/// Cosine similarity of a binarized query against an integer class vector.
[[nodiscard]] double cosine(const hypervector& query, std::span<const std::int32_t> cls);

/// Normalized Hamming similarity in [0, 1]: 1 - distance / D.
[[nodiscard]] double hamming_similarity(const hypervector& a, const hypervector& b);

} // namespace uhd::hdc

#endif // UHD_HDC_SIMILARITY_HPP
