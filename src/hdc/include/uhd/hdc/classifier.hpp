// Centroid HDC classifier shared by the baseline and uHD pipelines.
//
// Training (paper Fig. 1(b) / Fig. 5): every training image is encoded and
// bundled into its class accumulator, then each class accumulator is
// binarized with the sign function into a class hypervector. This is
// single-pass — no epochs — which is the property uHD exploits for
// train-on-edge. Inference: encode the test image, binarize, and pick the
// class with the highest cosine similarity.
//
// Two accumulation modes are provided (bench_ablation_binarize):
// * binarized_images — each image is binarized first (what the Fig. 5
//   hardware datapath emits), then the +-1 image hypervectors are bundled.
// * raw_sums — the integer pixel-bundles are added directly (the software
//   formulation Sigma L_i of Section III).
//
// An optional perceptron-style retraining pass (AdaptHD-like, the "w/
// retrain" rows of Fig. 6(b)) is provided as an extension.
//
// Train/serve split: the classifier owns two kinds of state.
// * Training state — the integer class accumulators (class_acc_), mutated
//   by fit/partial_fit/retrain and never read by inference.
// * Read state — an hdc::inference_snapshot (packed class memory, integer
//   class rows + cached norms, metadata) that finalize() re-derives from
//   the accumulators. Every predict* path delegates to it, so the
//   classifier answers queries exactly like a snapshot() copy would, and
//   snapshot() copies are what the serve layer publishes to concurrent
//   readers (serve::inference_engine) — one writer finalizes and
//   publishes, readers never touch classifier internals.
//
// Inference runs on the packed associative-memory engine: binarized-mode
// queries are sign-binarized word-parallel (kernels::sign_binarize) and
// answered by a Hamming-argmin scan over the contiguous packed class
// memory — bit-identical to the per-class cosine argmax it replaced
// (cosine is strictly decreasing in Hamming distance for fixed D, ties
// first-wins in both). Integer-mode queries use the blocked dot-product
// kernels against the snapshot's integer class rows with norms cached at
// finalization.
//
// Training scales two ways beyond the sequential fit() loop:
// * fit_parallel — the mini-batch thread-parallel engine (hdc/trainer.hpp):
//   per-worker class accumulators filled through the encoder's batch path
//   and reduced in fixed class/lane order, bit-identical to fit() for any
//   thread count.
// * retrain(train, epochs, pool) — mini-batch parallel perceptron epochs
//   (binarized mode; bit-identical to the sequential retrain).
// Inference scales down as well as out: predict_dynamic answers queries
// through the dynamic-dimension early-exit cascade (hdc/dynamic_query.hpp),
// reading only a calibrated prefix of each packed class row on easy
// queries and escalating to the full D otherwise.
//
// The Encoder type must provide:
//   std::size_t dim() const;
//   void encode(std::span<const std::uint8_t>, std::span<std::int32_t>) const;
#ifndef UHD_HDC_CLASSIFIER_HPP
#define UHD_HDC_CLASSIFIER_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/data/dataset.hpp"
#include "uhd/data/metrics.hpp"
#include "uhd/hdc/accumulator.hpp"
#include "uhd/hdc/class_memory.hpp"
#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/inference_snapshot.hpp" // query_mode + the read-state type
#include "uhd/hdc/similarity.hpp"
#include "uhd/hdc/trainer.hpp" // train_mode + the mini-batch parallel engine

namespace uhd::hdc {

/// Single-pass centroid classifier over any pixel encoder.
template <typename Encoder>
class hd_classifier {
public:
    hd_classifier(const Encoder& encoder, std::size_t classes,
                  train_mode mode = train_mode::binarized_images,
                  query_mode inference = query_mode::binarized)
        : encoder_(&encoder), classes_(classes), mode_(mode),
          state_(inference, classes, encoder.dim()) {
        UHD_REQUIRE(classes >= 2, "need at least two classes");
        class_acc_.assign(classes_, accumulator(encoder.dim()));
        class_hv_.assign(classes_, hypervector(encoder.dim()));
    }

    [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
    [[nodiscard]] train_mode mode() const noexcept { return mode_; }
    [[nodiscard]] query_mode inference() const noexcept { return state_.mode(); }
    [[nodiscard]] const Encoder& encoder() const noexcept { return *encoder_; }

    /// Re-point this classifier at `encoder` (same geometry). For owners
    /// that hold the encoder AND the classifier as members (uhd_model):
    /// the classifier stores a non-owning pointer, so a move/copy of the
    /// owner must rebind it to the owner's new encoder instance or it
    /// silently keeps referencing the old (possibly destroyed) one.
    void rebind_encoder(const Encoder& encoder) noexcept {
        encoder_ = &encoder;
    }

    /// Single-pass training over the dataset (labels must be < classes()).
    /// This is the sequential per-image loop — the oracle fit_parallel is
    /// tested against.
    void fit(const data::dataset& train) {
        UHD_REQUIRE(train.num_classes() <= classes_, "dataset has too many classes");
        std::vector<std::int32_t> scratch(encoder_->dim());
        for (std::size_t i = 0; i < train.size(); ++i) {
            encoder_->encode(train.image(i), scratch);
            bundle_into(train.label(i), scratch);
        }
        finalize();
    }

    /// Mini-batch thread-parallel fit (the batch training engine): the set
    /// is split into one contiguous chunk per pool lane, each chunk bundled
    /// into private per-class accumulators through the encoder's batch
    /// path, and the lane sets reduced in fixed class/lane order. The
    /// trained state is bit-identical to fit() for every thread count and
    /// batch size — the same determinism contract as predict_batch.
    void fit_parallel(const data::dataset& train, thread_pool* pool = nullptr,
                      trainer_options options = {}) {
        UHD_REQUIRE(train.num_classes() <= classes_, "dataset has too many classes");
        const batch_trainer<Encoder> trainer(*encoder_, classes_, mode_, options);
        const std::vector<accumulator> delta = trainer.accumulate(train, pool);
        for (std::size_t c = 0; c < classes_; ++c) class_acc_[c].add(delta[c]);
        finalize();
    }

    /// Incrementally add one labeled example (dynamic/online training).
    /// Only the touched class is re-finalized, so an online update costs
    /// O(D) rather than O(classes * D); the encode scratch is a reused
    /// per-instance buffer, so steady-state updates are allocation-free.
    void partial_fit(std::span<const std::uint8_t> image, std::size_t label) {
        UHD_REQUIRE(label < classes_, "label out of range");
        partial_scratch_.resize(encoder_->dim());
        encoder_->encode(image, partial_scratch_);
        bundle_into(label, partial_scratch_);
        finalize_class(label);
    }

    /// Predict the class of one image.
    [[nodiscard]] std::size_t predict(std::span<const std::uint8_t> image) const {
        // Reused per thread: predict_batch calls this once per image from
        // every pool worker, so per-call allocation would dominate.
        static thread_local std::vector<std::int32_t> scratch;
        scratch.resize(encoder_->dim());
        encoder_->encode(image, scratch);
        return predict_encoded(scratch);
    }

    /// Predict from an already-encoded accumulator (shared by predict and
    /// retrain so each image is encoded exactly once). Delegates to the
    /// read-state snapshot: binarized mode = word-parallel sign-binarize +
    /// Hamming-argmin over the packed class memory, integer mode = blocked
    /// dot products against the integer class rows with cached norms
    /// (cosine argmax, first-wins).
    [[nodiscard]] std::size_t predict_encoded(
        std::span<const std::int32_t> encoded) const {
        UHD_REQUIRE(encoded.size() == encoder_->dim(), "encoded size mismatch");
        return state_.predict_encoded(encoded);
    }

    /// Dynamic-dimension inference from an already-encoded accumulator: the
    /// query is sign-binarized and answered through the early-exit cascade
    /// over the packed class memory. The cascade always answers from the
    /// associative memory (the binarized engine), regardless of the
    /// configured query_mode; its full-D stage is bit-identical to
    /// binarized-mode predict_encoded().
    [[nodiscard]] std::size_t predict_dynamic_encoded(
        std::span<const std::int32_t> encoded, const dynamic_query_policy& policy,
        dynamic_query_stats* stats = nullptr) const {
        UHD_REQUIRE(encoded.size() == encoder_->dim(), "encoded size mismatch");
        return state_.predict_dynamic_encoded(encoded, policy, stats);
    }

    /// Dynamic-dimension inference on one image (encode + cascade).
    [[nodiscard]] std::size_t predict_dynamic(
        std::span<const std::uint8_t> image, const dynamic_query_policy& policy,
        dynamic_query_stats* stats = nullptr) const {
        static thread_local std::vector<std::int32_t> scratch;
        scratch.resize(encoder_->dim());
        encoder_->encode(image, scratch);
        return predict_dynamic_encoded(scratch, policy, stats);
    }

    /// Calibrate an early-exit policy for this model's class memory on a
    /// held-out dataset: each image is encoded and sign-binarized
    /// (pool-parallel when given — every query fills its own slot, so the
    /// packed calibration buffer is bit-identical for any thread count),
    /// then the per-stage margin thresholds are picked for
    /// `target_agreement` with the full-D answer
    /// (dynamic_query_policy::calibrate).
    [[nodiscard]] dynamic_query_policy calibrate_dynamic(
        const data::dataset& holdout, double target_agreement,
        thread_pool* pool = nullptr) const {
        const std::size_t dim = encoder_->dim();
        const std::size_t words = kernels::sign_words(dim);
        std::vector<std::uint64_t> packed(holdout.size() * words);
        thread_pool::maybe_parallel_for(
            pool, holdout.size(), [&](std::size_t begin, std::size_t end) {
                std::vector<std::int32_t> scratch(dim);
                for (std::size_t i = begin; i < end; ++i) {
                    encoder_->encode(holdout.image(i), scratch);
                    kernels::sign_binarize(scratch.data(), dim,
                                        packed.data() + i * words);
                }
            });
        return dynamic_query_policy::calibrate(state_, packed, holdout.size(),
                                               target_agreement);
    }

    /// Images per encoded block drained through the snapshot's query-GEMM
    /// path by predict_batch — sized to the serve engine's default
    /// micro-batch (engine_options::max_batch).
    static constexpr std::size_t predict_block_images = 32;

    /// Predict every image of a dataset into `out` (one label slot per
    /// image). Each worker encodes contiguous blocks of
    /// predict_block_images images and answers every block with one
    /// register-blocked kernel call (inference_snapshot::predict_block), so
    /// each packed class row is streamed once per query tile instead of
    /// once per image. With a pool, the batch is split into contiguous
    /// chunks across its workers; every image's prediction is independent
    /// and written to its own slot, and the block path is bit-identical to
    /// predict() per image — the result is the same for every thread count
    /// and block size.
    void predict_batch(const data::dataset& set, std::span<std::size_t> out,
                       thread_pool* pool = nullptr) const {
        UHD_REQUIRE(out.size() == set.size(), "prediction buffer size mismatch");
        const std::size_t dim = encoder_->dim();
        thread_pool::maybe_parallel_for(
            pool, set.size(), [&](std::size_t begin, std::size_t end) {
                std::vector<std::int32_t> encoded(
                    std::min(predict_block_images, end - begin) * dim);
                for (std::size_t b = begin; b < end; b += predict_block_images) {
                    const std::size_t count =
                        std::min(predict_block_images, end - b);
                    for (std::size_t i = 0; i < count; ++i) {
                        encoder_->encode(set.image(b + i),
                                         std::span<std::int32_t>(
                                             encoded.data() + i * dim, dim));
                    }
                    state_.predict_block({encoded.data(), count * dim}, count,
                                         out.subspan(b, count));
                }
            });
    }

    /// Convenience overload returning the predictions.
    [[nodiscard]] std::vector<std::size_t> predict_batch(
        const data::dataset& set, thread_pool* pool = nullptr) const {
        std::vector<std::size_t> out(set.size());
        predict_batch(set, out, pool);
        return out;
    }

    /// Accuracy over a dataset; optionally fills a confusion matrix. The
    /// predictions run through predict_batch (pool-parallel when given);
    /// the matrix and the accuracy are reduced in sample order afterwards,
    /// so the result does not depend on the thread count.
    [[nodiscard]] double evaluate(const data::dataset& test,
                                  data::confusion_matrix* matrix = nullptr,
                                  thread_pool* pool = nullptr) const {
        UHD_REQUIRE(!test.empty(), "evaluate on empty dataset");
        std::vector<std::size_t> predicted(test.size());
        predict_batch(test, predicted, pool);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < test.size(); ++i) {
            if (matrix != nullptr) matrix->record(test.label(i), predicted[i]);
            if (predicted[i] == test.label(i)) ++correct;
        }
        return static_cast<double>(correct) / static_cast<double>(test.size());
    }

    /// AdaptHD-style retraining extension: misclassified samples are added
    /// to their true class and subtracted from the predicted class.
    /// Returns the number of updates in the final epoch.
    std::size_t retrain(const data::dataset& train, std::size_t epochs) {
        std::vector<std::int32_t> scratch(encoder_->dim());
        std::size_t last_epoch_updates = 0;
        for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
            last_epoch_updates = 0;
            for (std::size_t i = 0; i < train.size(); ++i) {
                const std::size_t truth = train.label(i);
                // Encode once and predict from the accumulator — the seed
                // path encoded every misclassified image a second time.
                encoder_->encode(train.image(i), scratch);
                const std::size_t predicted = predict_encoded(scratch);
                if (predicted == truth) continue;
                class_acc_[truth].add_values(scratch);
                class_acc_[predicted].subtract_values(scratch);
                // Integer-mode predictions compare against the live
                // accumulators, so the snapshot's integer rows (and their
                // cached norms) must follow each update; binarized class
                // vectors refresh at epoch end.
                if (inference() == query_mode::integer) {
                    state_.store_class_values(truth, class_acc_[truth].values());
                    state_.store_class_values(predicted,
                                              class_acc_[predicted].values());
                }
                ++last_epoch_updates;
            }
            finalize();
            if (last_epoch_updates == 0) break;
        }
        return last_epoch_updates;
    }

    /// Mini-batch thread-parallel retraining. Binarized query mode predicts
    /// against the packed class memory, which within an epoch is frozen at
    /// its epoch-start state (finalize() refreshes it only between epochs)
    /// — so each mini-batch is encoded and predicted pool-parallel against
    /// that snapshot, and the accumulator updates are applied in sample
    /// order afterwards. Bit-identical to the sequential retrain() for
    /// every thread count and batch size (tested). Integer query mode
    /// compares against the *live* accumulators after every update, which
    /// is inherently sequential: it falls through to retrain().
    std::size_t retrain(const data::dataset& train, std::size_t epochs,
                        thread_pool* pool, std::size_t batch_images = 256) {
        if (pool == nullptr || inference() == query_mode::integer) {
            return retrain(train, epochs);
        }
        if (batch_images == 0) batch_images = 1;
        const std::size_t dim = encoder_->dim();
        std::vector<std::int32_t> encoded(std::min(batch_images, train.size()) * dim);
        std::vector<std::size_t> predicted(std::min(batch_images, train.size()));
        std::size_t last_epoch_updates = 0;
        for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
            last_epoch_updates = 0;
            for (std::size_t b = 0; b < train.size(); b += batch_images) {
                const std::size_t count = std::min(batch_images, train.size() - b);
                // Encode + predict fused, one parallel pass per mini-batch;
                // each image writes only its own slots.
                thread_pool::maybe_parallel_for(
                    pool, count, [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                            const std::span<std::int32_t> slot(
                                encoded.data() + i * dim, dim);
                            encoder_->encode(train.image(b + i), slot);
                            predicted[i] = predict_encoded(slot);
                        }
                    });
                for (std::size_t i = 0; i < count; ++i) {
                    const std::size_t truth = train.label(b + i);
                    if (predicted[i] == truth) continue;
                    const std::span<const std::int32_t> slot(
                        encoded.data() + i * dim, dim);
                    class_acc_[truth].add_values(slot);
                    class_acc_[predicted[i]].subtract_values(slot);
                    ++last_epoch_updates;
                }
            }
            finalize();
            if (last_epoch_updates == 0) break;
        }
        return last_epoch_updates;
    }

    /// Binarized class hypervector for class `c`.
    [[nodiscard]] const hypervector& class_hypervector(std::size_t c) const {
        UHD_REQUIRE(c < classes_, "class index out of range");
        return class_hv_[c];
    }

    /// Integer class accumulator for class `c` (pre-binarization).
    [[nodiscard]] const accumulator& class_accumulator(std::size_t c) const {
        UHD_REQUIRE(c < classes_, "class index out of range");
        return class_acc_[c];
    }

    /// Packed associative memory over the binarized class vectors (the
    /// read-state snapshot's class store).
    [[nodiscard]] const class_memory& packed_class_memory() const noexcept {
        return state_.memory();
    }

    /// Immutable copy of the current read state. The copy is independent:
    /// later fit/partial_fit/retrain calls never affect it, so it can be
    /// handed to concurrent readers (serve::inference_engine::publish) while
    /// this classifier keeps training. Its version() is the classifier's
    /// mutation count — strictly larger in any later snapshot whose state
    /// changed.
    [[nodiscard]] inference_snapshot snapshot() const { return state_; }

    /// Restore class accumulators (deserialization support); class
    /// hypervectors are re-derived by binarization.
    void load_state(std::vector<accumulator> accumulators) {
        UHD_REQUIRE(accumulators.size() == classes_, "class count mismatch");
        for (const auto& acc : accumulators) {
            UHD_REQUIRE(acc.dim() == encoder_->dim(), "accumulator dimension mismatch");
        }
        class_acc_ = std::move(accumulators);
        finalize();
    }

    /// Heap footprint of the model (class accumulators + hypervectors +
    /// the read-state snapshot).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        std::size_t bytes = state_.memory_bytes();
        for (const auto& a : class_acc_) bytes += a.memory_bytes();
        for (const auto& v : class_hv_) bytes += v.memory_bytes();
        return bytes;
    }

private:
    void bundle_into(std::size_t label, std::span<const std::int32_t> encoded) {
        if (mode_ == train_mode::raw_sums) {
            class_acc_[label].add_values(encoded);
            return;
        }
        // Binarize the image hypervector first (hardware semantics); the
        // kernel zeroes the tail bits, so the packed words satisfy the
        // add_sign_words contract directly — no bitstream materialized.
        sign_scratch_.resize(kernels::sign_words(encoder_->dim()));
        kernels::sign_binarize(encoded.data(), encoded.size(), sign_scratch_.data());
        class_acc_[label].add_sign_words(sign_scratch_);
    }

    /// Re-derive one class of the read state from its accumulator: the
    /// binarized vector, the packed row, and (integer mode) the integer row
    /// with its cached norm.
    void finalize_class(std::size_t c) {
        class_hv_[c] = class_acc_[c].sign();
        state_.store_class_row(c, class_hv_[c]);
        state_.store_class_values(c, class_acc_[c].values());
    }

    void finalize() {
        for (std::size_t c = 0; c < classes_; ++c) finalize_class(c);
    }

    const Encoder* encoder_;
    std::size_t classes_;
    train_mode mode_;
    std::vector<accumulator> class_acc_; ///< training state (write path)
    std::vector<hypervector> class_hv_;
    inference_snapshot state_;           ///< read state (every predict path)
    // Reused scratch buffers for partial_fit / bundle_into: online updates
    // advertise O(D) cost, so they must not pay a heap allocation per call
    // in either train mode.
    std::vector<std::int32_t> partial_scratch_;
    std::vector<std::uint64_t> sign_scratch_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_CLASSIFIER_HPP
