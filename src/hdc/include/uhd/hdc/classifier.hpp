// Centroid HDC classifier shared by the baseline and uHD pipelines.
//
// Training (paper Fig. 1(b) / Fig. 5): every training image is encoded and
// bundled into its class accumulator, then each class accumulator is
// binarized with the sign function into a class hypervector. This is
// single-pass — no epochs — which is the property uHD exploits for
// train-on-edge. Inference: encode the test image, binarize, and pick the
// class with the highest cosine similarity.
//
// Two accumulation modes are provided (bench_ablation_binarize):
// * binarized_images — each image is binarized first (what the Fig. 5
//   hardware datapath emits), then the +-1 image hypervectors are bundled.
// * raw_sums — the integer pixel-bundles are added directly (the software
//   formulation Sigma L_i of Section III).
//
// An optional perceptron-style retraining pass (AdaptHD-like, the "w/
// retrain" rows of Fig. 6(b)) is provided as an extension.
//
// The Encoder type must provide:
//   std::size_t dim() const;
//   void encode(std::span<const std::uint8_t>, std::span<std::int32_t>) const;
#ifndef UHD_HDC_CLASSIFIER_HPP
#define UHD_HDC_CLASSIFIER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "uhd/common/error.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/data/dataset.hpp"
#include "uhd/data/metrics.hpp"
#include "uhd/hdc/accumulator.hpp"
#include "uhd/hdc/similarity.hpp"

namespace uhd::hdc {

/// How image encodings are bundled into class accumulators.
enum class train_mode {
    binarized_images, ///< sign() each image hypervector before bundling
    raw_sums,         ///< bundle the integer accumulators directly
};

/// How a query is compared against the trained classes.
enum class query_mode {
    binarized, ///< sign() the query, cosine against binarized class vectors
    integer,   ///< cosine between the raw query and integer class vectors
};

/// Single-pass centroid classifier over any pixel encoder.
template <typename Encoder>
class hd_classifier {
public:
    hd_classifier(const Encoder& encoder, std::size_t classes,
                  train_mode mode = train_mode::binarized_images,
                  query_mode inference = query_mode::binarized)
        : encoder_(&encoder), classes_(classes), mode_(mode), inference_(inference) {
        UHD_REQUIRE(classes >= 2, "need at least two classes");
        class_acc_.assign(classes_, accumulator(encoder.dim()));
        class_hv_.assign(classes_, hypervector(encoder.dim()));
    }

    [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
    [[nodiscard]] train_mode mode() const noexcept { return mode_; }
    [[nodiscard]] query_mode inference() const noexcept { return inference_; }
    [[nodiscard]] const Encoder& encoder() const noexcept { return *encoder_; }

    /// Single-pass training over the dataset (labels must be < classes()).
    void fit(const data::dataset& train) {
        UHD_REQUIRE(train.num_classes() <= classes_, "dataset has too many classes");
        std::vector<std::int32_t> scratch(encoder_->dim());
        for (std::size_t i = 0; i < train.size(); ++i) {
            encoder_->encode(train.image(i), scratch);
            bundle_into(train.label(i), scratch);
        }
        finalize();
    }

    /// Incrementally add one labeled example (dynamic/online training).
    void partial_fit(std::span<const std::uint8_t> image, std::size_t label) {
        UHD_REQUIRE(label < classes_, "label out of range");
        std::vector<std::int32_t> scratch(encoder_->dim());
        encoder_->encode(image, scratch);
        bundle_into(label, scratch);
        finalize();
    }

    /// Predict the class of one image (argmax cosine similarity).
    [[nodiscard]] std::size_t predict(std::span<const std::uint8_t> image) const {
        // Reused per thread: predict_batch calls this once per image from
        // every pool worker, so per-call allocation would dominate.
        static thread_local std::vector<std::int32_t> scratch;
        scratch.resize(encoder_->dim());
        encoder_->encode(image, scratch);
        std::size_t best = 0;
        double best_similarity = -2.0;
        if (inference_ == query_mode::integer) {
            for (std::size_t c = 0; c < classes_; ++c) {
                const double similarity =
                    cosine(std::span<const std::int32_t>(scratch),
                           class_acc_[c].values());
                if (similarity > best_similarity) {
                    best_similarity = similarity;
                    best = c;
                }
            }
            return best;
        }
        // Binarize the query (the hardware emits sign bits, Fig. 5).
        bs::bitstream bits(encoder_->dim());
        for (std::size_t d = 0; d < scratch.size(); ++d) {
            if (scratch[d] < 0) bits.set_bit(d, true);
        }
        const hypervector query(std::move(bits));
        for (std::size_t c = 0; c < classes_; ++c) {
            const double similarity = cosine(query, class_hv_[c]);
            if (similarity > best_similarity) {
                best_similarity = similarity;
                best = c;
            }
        }
        return best;
    }

    /// Predict every image of a dataset into `out` (one label slot per
    /// image). With a pool, the batch is split into contiguous chunks
    /// across its workers; every image's prediction is independent and
    /// written to its own slot, so the result is bit-identical for every
    /// thread count.
    void predict_batch(const data::dataset& set, std::span<std::size_t> out,
                       thread_pool* pool = nullptr) const {
        UHD_REQUIRE(out.size() == set.size(), "prediction buffer size mismatch");
        thread_pool::maybe_parallel_for(
            pool, set.size(), [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) out[i] = predict(set.image(i));
            });
    }

    /// Convenience overload returning the predictions.
    [[nodiscard]] std::vector<std::size_t> predict_batch(
        const data::dataset& set, thread_pool* pool = nullptr) const {
        std::vector<std::size_t> out(set.size());
        predict_batch(set, out, pool);
        return out;
    }

    /// Accuracy over a dataset; optionally fills a confusion matrix. The
    /// predictions run through predict_batch (pool-parallel when given);
    /// the matrix and the accuracy are reduced in sample order afterwards,
    /// so the result does not depend on the thread count.
    [[nodiscard]] double evaluate(const data::dataset& test,
                                  data::confusion_matrix* matrix = nullptr,
                                  thread_pool* pool = nullptr) const {
        UHD_REQUIRE(!test.empty(), "evaluate on empty dataset");
        std::vector<std::size_t> predicted(test.size());
        predict_batch(test, predicted, pool);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < test.size(); ++i) {
            if (matrix != nullptr) matrix->record(test.label(i), predicted[i]);
            if (predicted[i] == test.label(i)) ++correct;
        }
        return static_cast<double>(correct) / static_cast<double>(test.size());
    }

    /// AdaptHD-style retraining extension: misclassified samples are added
    /// to their true class and subtracted from the predicted class.
    /// Returns the number of updates in the final epoch.
    std::size_t retrain(const data::dataset& train, std::size_t epochs) {
        std::vector<std::int32_t> scratch(encoder_->dim());
        std::size_t last_epoch_updates = 0;
        for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
            last_epoch_updates = 0;
            for (std::size_t i = 0; i < train.size(); ++i) {
                const std::size_t truth = train.label(i);
                const std::size_t predicted = predict(train.image(i));
                if (predicted == truth) continue;
                encoder_->encode(train.image(i), scratch);
                class_acc_[truth].add_values(scratch);
                class_acc_[predicted].subtract_values(scratch);
                ++last_epoch_updates;
            }
            finalize();
            if (last_epoch_updates == 0) break;
        }
        return last_epoch_updates;
    }

    /// Binarized class hypervector for class `c`.
    [[nodiscard]] const hypervector& class_hypervector(std::size_t c) const {
        UHD_REQUIRE(c < classes_, "class index out of range");
        return class_hv_[c];
    }

    /// Integer class accumulator for class `c` (pre-binarization).
    [[nodiscard]] const accumulator& class_accumulator(std::size_t c) const {
        UHD_REQUIRE(c < classes_, "class index out of range");
        return class_acc_[c];
    }

    /// Restore class accumulators (deserialization support); class
    /// hypervectors are re-derived by binarization.
    void load_state(std::vector<accumulator> accumulators) {
        UHD_REQUIRE(accumulators.size() == classes_, "class count mismatch");
        for (const auto& acc : accumulators) {
            UHD_REQUIRE(acc.dim() == encoder_->dim(), "accumulator dimension mismatch");
        }
        class_acc_ = std::move(accumulators);
        finalize();
    }

    /// Heap footprint of the model (class accumulators + hypervectors).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        std::size_t bytes = 0;
        for (const auto& a : class_acc_) bytes += a.memory_bytes();
        for (const auto& v : class_hv_) bytes += v.memory_bytes();
        return bytes;
    }

private:
    void bundle_into(std::size_t label, std::span<const std::int32_t> encoded) {
        if (mode_ == train_mode::raw_sums) {
            class_acc_[label].add_values(encoded);
            return;
        }
        // Binarize the image hypervector first (hardware semantics).
        bs::bitstream bits(encoder_->dim());
        for (std::size_t d = 0; d < encoded.size(); ++d) {
            if (encoded[d] < 0) bits.set_bit(d, true);
        }
        class_acc_[label].add(hypervector(std::move(bits)));
    }

    void finalize() {
        for (std::size_t c = 0; c < classes_; ++c) class_hv_[c] = class_acc_[c].sign();
    }

    const Encoder* encoder_;
    std::size_t classes_;
    train_mode mode_;
    query_mode inference_;
    std::vector<accumulator> class_acc_;
    std::vector<hypervector> class_hv_;
};

} // namespace uhd::hdc

#endif // UHD_HDC_CLASSIFIER_HPP
