#include "uhd/hdc/dynamic_query.hpp"

#include <algorithm>
#include <utility>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/hdc/inference_snapshot.hpp"

namespace uhd::hdc {

dynamic_query_policy dynamic_query_policy::full_scan(const class_memory& mem) {
    dynamic_query_policy policy;
    policy.stages_.push_back(dynamic_stage{mem.words_per_class(), 0});
    return policy;
}

dynamic_query_policy dynamic_query_policy::ladder(const class_memory& mem) {
    const std::size_t words = mem.words_per_class();
    dynamic_query_policy policy;
    for (const std::size_t divisor : {8u, 4u, 2u}) {
        const std::size_t window = words / divisor;
        if (window == 0) continue;
        if (!policy.stages_.empty() && policy.stages_.back().window_words == window) {
            continue;
        }
        policy.stages_.push_back(dynamic_stage{window, disabled_threshold});
    }
    // The final stage scans everything and always answers.
    if (!policy.stages_.empty() && policy.stages_.back().window_words == words) {
        policy.stages_.pop_back();
    }
    policy.stages_.push_back(dynamic_stage{words, 0});
    return policy;
}

dynamic_query_policy dynamic_query_policy::calibrate(
    const class_memory& mem, std::span<const std::uint64_t> queries,
    std::size_t count, double target_agreement) {
    UHD_REQUIRE(target_agreement >= 0.0 && target_agreement <= 1.0,
                "target agreement must be a rate in [0, 1]");
    const std::size_t words = mem.words_per_class();
    UHD_REQUIRE(queries.size() >= count * words,
                "calibration query buffer too small");
    dynamic_query_policy policy = ladder(mem);
    if (count == 0) return policy; // nothing to calibrate on: stay full-scan

    // One incremental pass per query (the same word economy as answer()):
    // extend the per-class distances stage by stage, recording every early
    // stage's (argmin, margin); the final stage yields the full-D answer
    // the agreement flags compare against. Bit-identical to per-stage
    // nearest_prefix scans at a fraction of the words touched.
    const std::size_t early_stages = policy.stages_.size() - 1;
    std::vector<std::vector<std::pair<std::uint64_t, bool>>> stage_outcomes(
        early_stages, std::vector<std::pair<std::uint64_t, bool>>(count));
    std::vector<std::uint64_t> distances(mem.classes());
    std::vector<std::pair<std::size_t, std::uint64_t>> per_stage(early_stages);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t* query = queries.data() + i * words;
        std::fill(distances.begin(), distances.end(), 0);
        std::size_t scanned_to = 0;
        std::size_t full_answer = 0;
        for (std::size_t s = 0; s < policy.stages_.size(); ++s) {
            kernels::hamming_extend_words(query, mem.rows().data(), words, scanned_to,
                                       policy.stages_[s].window_words,
                                       mem.classes(), distances.data());
            scanned_to = policy.stages_[s].window_words;
            const kernels::argmin2_result r =
                kernels::argmin2_u64(distances.data(), mem.classes());
            if (s < early_stages) {
                const std::uint64_t margin = r.runner_up == ~std::uint64_t{0}
                                                 ? ~std::uint64_t{0}
                                                 : r.runner_up - r.distance;
                per_stage[s] = {r.index, margin};
            } else {
                full_answer = r.index;
            }
        }
        for (std::size_t s = 0; s < early_stages; ++s) {
            stage_outcomes[s][i] = {per_stage[s].second,
                                    per_stage[s].first == full_answer};
        }
    }

    for (std::size_t s = 0; s + 1 < policy.stages_.size(); ++s) {
        dynamic_stage& stage = policy.stages_[s];
        // (margin, agrees-with-full-D) per calibration query at this window.
        std::vector<std::pair<std::uint64_t, bool>>& outcomes = stage_outcomes[s];
        std::sort(outcomes.begin(), outcomes.end());
        // Suffix agreement counts: agree[k] = #agreements among outcomes
        // [k, count). The candidate thresholds are the distinct margins;
        // picking T = outcomes[k].first keeps exactly the suffix [k', count)
        // where k' is the first index with that margin.
        std::vector<std::size_t> agree_suffix(count + 1, 0);
        for (std::size_t k = count; k-- > 0;) {
            agree_suffix[k] = agree_suffix[k + 1] + (outcomes[k].second ? 1 : 0);
        }
        stage.margin_threshold = disabled_threshold;
        for (std::size_t k = 0; k < count; ++k) {
            if (k > 0 && outcomes[k].first == outcomes[k - 1].first) continue;
            const std::size_t kept = count - k;
            if (static_cast<double>(agree_suffix[k]) >=
                target_agreement * static_cast<double>(kept)) {
                // Smallest admissible threshold = most early exits. Clamped
                // below the disabled sentinel: a saturated margin (single-row
                // memory) must calibrate to "always exit", not "disabled".
                stage.margin_threshold =
                    std::min(outcomes[k].first, disabled_threshold - 1);
                break;
            }
        }
    }
    return policy;
}

std::size_t dynamic_query_policy::answer(const class_memory& mem,
                                         std::span<const std::uint64_t> query_words,
                                         dynamic_query_stats* stats) const {
    UHD_REQUIRE(!stages_.empty(), "answer() on a default-constructed policy");
    UHD_REQUIRE(mem.words_per_class() == full_words(),
                "policy was built for a different row width");
    UHD_REQUIRE(query_words.size() == mem.words_per_class(),
                "query word count mismatch");
    // Running per-class distances, extended stage by stage (each word of
    // each row is popcounted at most once per query).
    static thread_local std::vector<std::uint64_t> distances;
    distances.assign(mem.classes(), 0);

    std::size_t scanned_to = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const dynamic_stage& stage = stages_[s];
        kernels::hamming_extend_words(query_words.data(), mem.rows().data(),
                                   mem.words_per_class(), scanned_to,
                                   stage.window_words, mem.classes(),
                                   distances.data());
        scanned_to = stage.window_words;
        const kernels::argmin2_result r =
            kernels::argmin2_u64(distances.data(), mem.classes());
        const std::uint64_t margin =
            r.runner_up == ~std::uint64_t{0} ? ~std::uint64_t{0}
                                             : r.runner_up - r.distance;
        const bool last = s + 1 == stages_.size();
        if (last || (stage.margin_threshold != disabled_threshold &&
                     margin >= stage.margin_threshold)) {
            if (stats != nullptr) {
                stats->exit_stage = s;
                stats->window_words = stage.window_words;
                stats->words_scanned = mem.classes() * stage.window_words;
            }
            return r.index;
        }
    }
    return 0; // unreachable: the final stage always answers
}

void dynamic_query_policy::answer_block(const class_memory& mem,
                                        std::span<const std::uint64_t> queries_words,
                                        std::size_t n_queries,
                                        std::span<std::size_t> out,
                                        std::span<dynamic_query_stats> stats) const {
    UHD_REQUIRE(!stages_.empty(), "answer_block() on a default-constructed policy");
    UHD_REQUIRE(mem.words_per_class() == full_words(),
                "policy was built for a different row width");
    const std::size_t words = mem.words_per_class();
    UHD_REQUIRE(queries_words.size() == n_queries * words,
                "query block word count mismatch");
    UHD_REQUIRE(out.size() == n_queries, "prediction buffer size mismatch");
    UHD_REQUIRE(stats.empty() || stats.size() == n_queries,
                "stats buffer size mismatch");
    if (n_queries == 0) return;
    const std::size_t classes = mem.classes();
    // Per-thread block state: a compacting copy of the still-active queries,
    // their running per-class distances, and each slot's original index.
    // Compaction keeps the active set contiguous, so every stage is one
    // block-extend call that streams each class row once for all survivors.
    static thread_local std::vector<std::uint64_t> active_queries;
    static thread_local std::vector<std::uint64_t> distances;
    static thread_local std::vector<std::size_t> origin;
    active_queries.assign(queries_words.begin(), queries_words.end());
    distances.assign(n_queries * classes, 0);
    origin.resize(n_queries);
    for (std::size_t q = 0; q < n_queries; ++q) origin[q] = q;

    std::size_t active = n_queries;
    std::size_t scanned_to = 0;
    for (std::size_t s = 0; s < stages_.size() && active > 0; ++s) {
        const dynamic_stage& stage = stages_[s];
        kernels::hamming_block_extend(active_queries.data(), words, active,
                                      mem.rows().data(), words, scanned_to,
                                      stage.window_words, classes,
                                      distances.data());
        scanned_to = stage.window_words;
        const bool last = s + 1 == stages_.size();
        std::size_t kept = 0;
        for (std::size_t slot = 0; slot < active; ++slot) {
            const kernels::argmin2_result r =
                kernels::argmin2_u64(distances.data() + slot * classes, classes);
            const std::uint64_t margin = r.runner_up == ~std::uint64_t{0}
                                             ? ~std::uint64_t{0}
                                             : r.runner_up - r.distance;
            if (last || (stage.margin_threshold != disabled_threshold &&
                         margin >= stage.margin_threshold)) {
                const std::size_t q = origin[slot];
                out[q] = r.index;
                if (!stats.empty()) {
                    stats[q].exit_stage = s;
                    stats[q].window_words = stage.window_words;
                    stats[q].words_scanned = classes * stage.window_words;
                }
                continue;
            }
            if (kept != slot) {
                std::copy_n(active_queries.begin() +
                                static_cast<std::ptrdiff_t>(slot * words),
                            words,
                            active_queries.begin() +
                                static_cast<std::ptrdiff_t>(kept * words));
                std::copy_n(distances.begin() +
                                static_cast<std::ptrdiff_t>(slot * classes),
                            classes,
                            distances.begin() +
                                static_cast<std::ptrdiff_t>(kept * classes));
                origin[kept] = origin[slot];
            }
            ++kept;
        }
        active = kept;
    }
}

// --- snapshot overloads ---------------------------------------------------

dynamic_query_policy dynamic_query_policy::full_scan(const inference_snapshot& snap) {
    return full_scan(snap.memory());
}

dynamic_query_policy dynamic_query_policy::ladder(const inference_snapshot& snap) {
    return ladder(snap.memory());
}

dynamic_query_policy dynamic_query_policy::calibrate(
    const inference_snapshot& snap, std::span<const std::uint64_t> queries,
    std::size_t count, double target_agreement) {
    return calibrate(snap.memory(), queries, count, target_agreement);
}

std::size_t dynamic_query_policy::answer(const inference_snapshot& snap,
                                         std::span<const std::uint64_t> query_words,
                                         dynamic_query_stats* stats) const {
    return answer(snap.memory(), query_words, stats);
}

void dynamic_query_policy::answer_block(const inference_snapshot& snap,
                                        std::span<const std::uint64_t> queries_words,
                                        std::size_t n_queries,
                                        std::span<std::size_t> out,
                                        std::span<dynamic_query_stats> stats) const {
    answer_block(snap.memory(), queries_words, n_queries, out, stats);
}

} // namespace uhd::hdc
