#include "uhd/hdc/ngram.hpp"

#include "uhd/common/error.hpp"

namespace uhd::hdc {

symbol_item_memory::symbol_item_memory(std::size_t alphabet, std::size_t dim,
                                       std::uint64_t seed)
    : dim_(dim) {
    UHD_REQUIRE(alphabet >= 2, "alphabet needs at least two symbols");
    UHD_REQUIRE(dim >= 64, "dimension too small to be hyperdimensional");
    xoshiro256ss rng(seed);
    vectors_.reserve(alphabet);
    for (std::size_t s = 0; s < alphabet; ++s) {
        vectors_.push_back(hypervector::random(dim, rng));
    }
}

const hypervector& symbol_item_memory::vector(std::size_t s) const {
    UHD_REQUIRE(s < vectors_.size(), "symbol out of range");
    return vectors_[s];
}

std::size_t symbol_item_memory::memory_bytes() const noexcept {
    std::size_t bytes = vectors_.capacity() * sizeof(hypervector);
    for (const auto& v : vectors_) bytes += v.memory_bytes();
    return bytes;
}

ngram_encoder::ngram_encoder(const symbol_item_memory& symbols, std::size_t n)
    : symbols_(&symbols), n_(n) {
    UHD_REQUIRE(n >= 1, "n-gram size must be at least 1");
}

hypervector ngram_encoder::window(std::span<const std::size_t> sequence,
                                  std::size_t offset) const {
    UHD_REQUIRE(offset + n_ <= sequence.size(), "window exceeds sequence");
    // rho^{n-1}(V[s_t]) * ... * V[s_{t+n-1}] — older symbols permuted more.
    hypervector acc = permute(symbols_->vector(sequence[offset]), n_ - 1);
    for (std::size_t k = 1; k < n_; ++k) {
        acc = bind(acc, permute(symbols_->vector(sequence[offset + k]), n_ - 1 - k));
    }
    return acc;
}

accumulator ngram_encoder::encode(std::span<const std::size_t> sequence) const {
    UHD_REQUIRE(sequence.size() >= n_, "sequence shorter than the n-gram window");
    accumulator acc(dim());
    for (std::size_t t = 0; t + n_ <= sequence.size(); ++t) {
        acc.add(window(sequence, t));
    }
    return acc;
}

hypervector ngram_encoder::encode_sign(std::span<const std::size_t> sequence) const {
    return encode(sequence).sign();
}

} // namespace uhd::hdc
