#include "uhd/hdc/class_memory.hpp"

#include <algorithm>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"

namespace uhd::hdc {

class_memory::class_memory(std::size_t classes, std::size_t dim)
    : classes_(classes), dim_(dim), words_(kernels::sign_words(dim)),
      rows_(classes * words_, 0) {
    UHD_REQUIRE(classes >= 1, "class memory needs at least one class");
    UHD_REQUIRE(dim >= 1, "class memory needs a positive dimension");
}

void class_memory::store(std::size_t c, const hypervector& hv) {
    UHD_REQUIRE(c < classes_, "class index out of range");
    UHD_REQUIRE(hv.dim() == dim_, "hypervector dimension mismatch");
    const auto words = hv.bits().words();
    std::copy(words.begin(), words.end(), rows_.begin() + static_cast<std::ptrdiff_t>(c * words_));
}

std::span<const std::uint64_t> class_memory::row(std::size_t c) const {
    UHD_REQUIRE(c < classes_, "class index out of range");
    return {rows_.data() + c * words_, words_};
}

std::size_t class_memory::nearest(std::span<const std::uint64_t> query_words,
                                  std::uint64_t* distance_out) const {
    UHD_REQUIRE(classes_ >= 1, "nearest() on an empty class memory");
    UHD_REQUIRE(query_words.size() == words_, "query word count mismatch");
    return kernels::hamming_argmin(query_words.data(), rows_.data(), words_, classes_,
                                   distance_out);
}

void class_memory::nearest_block(std::span<const std::uint64_t> queries_words,
                                 std::size_t n_queries, std::span<std::size_t> out,
                                 std::uint64_t* distances_out) const {
    UHD_REQUIRE(classes_ >= 1, "nearest_block() on an empty class memory");
    UHD_REQUIRE(queries_words.size() == n_queries * words_,
                "query block word count mismatch");
    UHD_REQUIRE(out.size() == n_queries, "prediction buffer size mismatch");
    if (n_queries == 0) return;
    // Per-thread scratch: one argmin2 slot per query in the block.
    static thread_local std::vector<kernels::argmin2_result> results;
    results.resize(n_queries);
    kernels::hamming_block_argmin2_prefix(queries_words.data(), words_, n_queries,
                                          rows_.data(), words_, words_, classes_,
                                          results.data());
    for (std::size_t q = 0; q < n_queries; ++q) {
        out[q] = results[q].index;
        if (distances_out != nullptr) distances_out[q] = results[q].distance;
    }
}

class_memory::prefix_result class_memory::nearest_prefix(
    std::span<const std::uint64_t> query_words, std::size_t window_words) const {
    UHD_REQUIRE(classes_ >= 1, "nearest_prefix() on an empty class memory");
    UHD_REQUIRE(window_words >= 1 && window_words <= words_,
                "prefix window out of range");
    UHD_REQUIRE(query_words.size() >= window_words, "query shorter than window");
    const kernels::argmin2_result r = kernels::hamming_argmin2_prefix(
        query_words.data(), rows_.data(), words_, window_words, classes_);
    // Saturating margin: a single-row memory has no runner-up, so every
    // window is maximally decisive.
    const std::uint64_t margin =
        r.runner_up == ~std::uint64_t{0} ? ~std::uint64_t{0} : r.runner_up - r.distance;
    return prefix_result{r.index, r.distance, margin};
}

std::size_t class_memory::nearest(const hypervector& query,
                                  std::uint64_t* distance_out) const {
    UHD_REQUIRE(query.dim() == dim_, "query dimension mismatch");
    return nearest(query.bits().words(), distance_out);
}

bool class_memory::operator==(const class_memory& other) const noexcept {
    return classes_ == other.classes_ && dim_ == other.dim_ && rows_ == other.rows_;
}

} // namespace uhd::hdc
