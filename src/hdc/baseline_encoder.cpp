#include "uhd/hdc/baseline_encoder.hpp"

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"

namespace uhd::hdc {

baseline_encoder::baseline_encoder(const baseline_config& config, data::image_shape shape)
    : config_(config), shape_(shape) {
    UHD_REQUIRE(config.dim >= 64, "dimension too small to be hyperdimensional");
    UHD_REQUIRE(shape.channels == 1, "baseline encoder expects grayscale images");
    reseed(config.seed);
}

void baseline_encoder::reseed(std::uint64_t seed) {
    config_.seed = seed;
    positions_.emplace(shape_.pixels(), config_.dim, config_.source, hash64(seed),
                       config_.bank);
    levels_.emplace(config_.levels, config_.dim, config_.source,
                    hash64(seed ^ 0xabcdULL), config_.bank);
}

void baseline_encoder::encode(std::span<const std::uint8_t> image,
                              std::span<std::int32_t> out) const {
    UHD_REQUIRE(image.size() == shape_.pixels(), "image size mismatch");
    UHD_REQUIRE(out.size() == config_.dim, "output accumulator size mismatch");

    const std::size_t words_per_row = words_for_bits(config_.dim);
    // Count, per dimension, how many pixels bound to a logic-1 (-1) bit;
    // the bipolar sum is then H - 2 * ones. uint16 is safe: H <= 4096 here
    // and in the paper (28x28 or 32x32). Sized to whole words so the
    // unrolled lane loop may run over the tail (tail bits are zero anyway).
    std::vector<std::uint16_t> ones(words_per_row * 64, 0);

    for (std::size_t p = 0; p < image.size(); ++p) {
        const std::size_t k = levels_->level_of(image[p]);
        const std::uint64_t* prow = positions_->row_words(p).data();
        const std::uint64_t* lrow = levels_->row_words(k).data();
        std::uint16_t* lanes = ones.data();
        for (std::size_t w = 0; w < words_per_row; ++w) {
            std::uint64_t x = prow[w] ^ lrow[w]; // binding: bipolar multiply
            std::uint16_t* base = lanes + w * 64;
            for (int j = 0; j < 64; ++j) {
                base[j] = static_cast<std::uint16_t>(base[j] + ((x >> j) & 1u));
            }
        }
    }

    const std::int32_t h = static_cast<std::int32_t>(image.size());
    for (std::size_t d = 0; d < config_.dim; ++d) {
        out[d] = h - 2 * static_cast<std::int32_t>(ones[d]);
    }
}

hypervector baseline_encoder::encode_sign(std::span<const std::uint8_t> image) const {
    std::vector<std::int32_t> acc(config_.dim);
    encode(image, acc);
    bs::bitstream bits(config_.dim);
    for (std::size_t d = 0; d < config_.dim; ++d) {
        if (acc[d] < 0) bits.set_bit(d, true); // bit 1 = -1
    }
    return hypervector(std::move(bits));
}

std::size_t baseline_encoder::memory_bytes() const noexcept {
    return positions_->memory_bytes() + levels_->memory_bytes();
}

} // namespace uhd::hdc
