#include "uhd/hdc/item_memory.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "uhd/common/bits.hpp"
#include "uhd/common/error.hpp"
#include "uhd/lowdisc/lfsr.hpp"

namespace uhd::hdc {
namespace {

// Fill `words` with random bits from the selected source. The LFSR path
// mirrors the hardware: a 32-bit maximal-length register streams bits.
void fill_random_words(std::span<std::uint64_t> words, randomness_source source,
                       std::uint64_t seed) {
    if (source == randomness_source::xoshiro) {
        xoshiro256ss rng(seed);
        for (auto& w : words) w = rng.next();
        return;
    }
    ld::lfsr reg(32, static_cast<std::uint32_t>(seed | 1u), ld::lfsr_kind::fibonacci);
    for (auto& w : words) {
        std::uint64_t word = 0;
        for (int half = 0; half < 2; ++half) {
            word |= static_cast<std::uint64_t>(reg.next_bits(32)) << (32 * half);
        }
        w = word;
    }
}

// One row's worth of words from a generator already positioned at the row
// start — the shared stream body of fill_random_words.
void stream_row_words(xoshiro256ss& rng, std::uint64_t* row, std::size_t words) {
    for (std::size_t w = 0; w < words; ++w) row[w] = rng.next();
}

void stream_row_words(ld::lfsr& reg, std::uint64_t* row, std::size_t words) {
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t word = 0;
        for (int half = 0; half < 2; ++half) {
            word |= static_cast<std::uint64_t>(reg.next_bits(32)) << (32 * half);
        }
        row[w] = word;
    }
}

} // namespace

position_item_memory::position_item_memory(std::size_t count, std::size_t dim,
                                           randomness_source source, std::uint64_t seed,
                                           bank_mode mode)
    : count_(count), dim_(dim), words_per_row_(words_for_bits(dim)), source_(source),
      mode_(mode) {
    UHD_REQUIRE(count >= 1, "position memory needs at least one vector");
    UHD_REQUIRE(dim >= 1, "hypervector dimension must be positive");
    if (mode_ == bank_mode::stored) {
        words_.resize(count_ * words_per_row_);
        fill_random_words(words_, source, seed);
        // Zero each row's tail so whole-word popcounts remain exact.
        const std::size_t used = dim_ % word_bits;
        if (used != 0) {
            for (std::size_t p = 0; p < count_; ++p) {
                words_[p * words_per_row_ + words_per_row_ - 1] &= low_mask(used);
            }
        }
        return;
    }
    // Rematerialize: walk the same continuous generator stream the stored
    // mode consumes, but keep only each row's restart state — O(count)
    // bytes instead of O(count * dim) bits, with bit-identical rows.
    std::vector<std::uint64_t> discard(words_per_row_);
    if (source_ == randomness_source::xoshiro) {
        xoshiro256ss rng(seed);
        xoshiro_states_.resize(count_ * 4);
        for (std::size_t p = 0; p < count_; ++p) {
            const auto snap = rng.state();
            std::copy(snap.begin(), snap.end(), xoshiro_states_.data() + p * 4);
            stream_row_words(rng, discard.data(), words_per_row_);
        }
    } else {
        ld::lfsr reg(32, static_cast<std::uint32_t>(seed | 1u),
                     ld::lfsr_kind::fibonacci);
        lfsr_states_.resize(count_);
        for (std::size_t p = 0; p < count_; ++p) {
            lfsr_states_[p] = reg.state();
            stream_row_words(reg, discard.data(), words_per_row_);
        }
    }
}

void position_item_memory::materialize_row(std::size_t p, std::uint64_t* row) const {
    if (source_ == randomness_source::xoshiro) {
        std::array<std::uint64_t, 4> snap;
        std::copy_n(xoshiro_states_.data() + p * 4, 4, snap.begin());
        xoshiro256ss rng = xoshiro256ss::from_state(snap);
        stream_row_words(rng, row, words_per_row_);
    } else {
        // The maximal-length register never reaches the all-zero lock-up
        // state, so the snapshot is always a valid seed.
        ld::lfsr reg(32, lfsr_states_[p], ld::lfsr_kind::fibonacci);
        stream_row_words(reg, row, words_per_row_);
    }
    const std::size_t used = dim_ % word_bits;
    if (used != 0) row[words_per_row_ - 1] &= low_mask(used);
}

std::span<const std::uint64_t> position_item_memory::row_words(std::size_t p) const {
    UHD_REQUIRE(p < count_, "position index out of range");
    if (mode_ == bank_mode::stored) {
        return {words_.data() + p * words_per_row_, words_per_row_};
    }
    // Reused per thread: the binding loop fetches one row per pixel.
    static thread_local std::vector<std::uint64_t> row;
    row.resize(words_per_row_);
    materialize_row(p, row.data());
    return {row.data(), row.size()};
}

hypervector position_item_memory::vector(std::size_t p) const {
    const auto row = row_words(p);
    bs::bitstream bits(dim_);
    auto dst = bits.mutable_words();
    for (std::size_t w = 0; w < row.size(); ++w) dst[w] = row[w];
    bits.mask_tail();
    return hypervector(std::move(bits));
}

level_item_memory::level_item_memory(std::size_t levels, std::size_t dim,
                                     randomness_source source, std::uint64_t seed,
                                     bank_mode mode)
    : levels_(levels), dim_(dim), words_per_row_(words_for_bits(dim)), mode_(mode) {
    UHD_REQUIRE(levels >= 2 && levels <= 65535, "level count must be in [2, 65535]");
    UHD_REQUIRE(dim >= 1, "hypervector dimension must be positive");

    // One uniform draw per dimension defines where the bit flips from -1 to
    // +1 as the level index k rises (the paper's R vs t = k*D/2^n rule).
    tau_.resize(dim_);
    if (source == randomness_source::xoshiro) {
        xoshiro256ss rng(seed);
        for (auto& t : tau_) {
            t = static_cast<std::uint16_t>(
                std::ceil(rng.next_unit() * static_cast<double>(levels_)));
        }
    } else {
        ld::lfsr reg(32, static_cast<std::uint32_t>(seed | 1u), ld::lfsr_kind::fibonacci);
        for (auto& t : tau_) {
            t = static_cast<std::uint16_t>(
                std::ceil(reg.next_unit() * static_cast<double>(levels_)));
        }
    }

    if (mode_ == bank_mode::rematerialize) return; // rows are pure functions of tau_

    // Materialize all level rows packed: bit = 1 (-1) while k < tau_d.
    words_.assign(levels_ * words_per_row_, 0);
    for (std::size_t k = 1; k <= levels_; ++k) {
        materialize_row(k, words_.data() + (k - 1) * words_per_row_);
    }
}

void level_item_memory::materialize_row(std::size_t k, std::uint64_t* row) const {
    std::fill_n(row, words_per_row_, std::uint64_t{0});
    for (std::size_t d = 0; d < dim_; ++d) {
        if (k < tau_[d]) row[d / word_bits] |= std::uint64_t{1} << (d % word_bits);
    }
}

std::span<const std::uint64_t> level_item_memory::row_words(std::size_t k) const {
    UHD_REQUIRE(k >= 1 && k <= levels_, "level index out of range (1-based)");
    if (mode_ == bank_mode::stored) {
        return {words_.data() + (k - 1) * words_per_row_, words_per_row_};
    }
    static thread_local std::vector<std::uint64_t> row;
    row.resize(words_per_row_);
    materialize_row(k, row.data());
    return {row.data(), row.size()};
}

hypervector level_item_memory::vector(std::size_t k) const {
    const auto row = row_words(k);
    bs::bitstream bits(dim_);
    auto dst = bits.mutable_words();
    for (std::size_t w = 0; w < row.size(); ++w) dst[w] = row[w];
    bits.mask_tail();
    return hypervector(std::move(bits));
}

} // namespace uhd::hdc
