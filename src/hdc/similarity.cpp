#include "uhd/hdc/similarity.hpp"

#include <cmath>

#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"

namespace uhd::hdc {

double cosine(const hypervector& a, const hypervector& b) {
    UHD_REQUIRE(a.dim() == b.dim() && a.dim() > 0, "hypervector dimension mismatch");
    // Bipolar vectors have norm sqrt(D), so cosine = dot / D.
    return static_cast<double>(a.dot(b)) / static_cast<double>(a.dim());
}

double cosine(std::span<const std::int32_t> a, std::span<const std::int32_t> b) {
    UHD_REQUIRE(a.size() == b.size() && !a.empty(), "accumulator dimension mismatch");
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = static_cast<double>(a[i]);
        const double y = static_cast<double>(b[i]);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if (na <= 0.0 || nb <= 0.0) return 0.0;
    return dot / std::sqrt(na * nb);
}

double cosine(const hypervector& query, std::span<const std::int32_t> cls) {
    UHD_REQUIRE(query.dim() == cls.size() && query.dim() > 0,
                "query/class dimension mismatch");
    // The query stays packed: with bit 1 = -1, the signed dot product is
    // sum(cls) - 2 * (sum of cls over the set bits), computed word-at-a-time
    // instead of through per-element bit extraction. The linear sums fit
    // int64 for any D; the squared norm does not (D * INT32_MAX^2), so it
    // accumulates in double like the other cosine overloads.
    std::int64_t total = 0;
    double norm = 0.0;
    for (const std::int32_t y : cls) {
        total += y;
        norm += static_cast<double>(y) * static_cast<double>(y);
    }
    if (norm <= 0.0) return 0.0;
    const std::int64_t negatives = kernels::masked_sum_i32(query.bits().words().data(),
                                                           cls.data(), cls.size());
    const std::int64_t dot = total - 2 * negatives;
    return static_cast<double>(dot) /
           (std::sqrt(norm) *
            std::sqrt(static_cast<double>(query.dim())));
}

double hamming_similarity(const hypervector& a, const hypervector& b) {
    UHD_REQUIRE(a.dim() == b.dim() && a.dim() > 0, "hypervector dimension mismatch");
    const double distance = static_cast<double>(bs::hamming_distance(a.bits(), b.bits()));
    return 1.0 - distance / static_cast<double>(a.dim());
}

} // namespace uhd::hdc
