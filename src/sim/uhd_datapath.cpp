#include "uhd/sim/uhd_datapath.hpp"

#include "uhd/bitstream/unary.hpp"
#include "uhd/common/error.hpp"

namespace uhd::sim {

uhd_datapath_sim::uhd_datapath_sim(const core::uhd_encoder& encoder)
    : encoder_(&encoder) {}

hdc::hypervector uhd_datapath_sim::run(std::span<const std::uint8_t> image,
                                       event_counts* events) const {
    UHD_REQUIRE(image.size() == encoder_->pixels(), "image size mismatch");
    const std::size_t dim = encoder_->dim();
    const std::size_t pixels = encoder_->pixels();
    const auto& ust = encoder_->stream_table();

    // The mean_intensity policy loads the threshold register from the
    // image's expected popcount; half_inputs hard-wires ceil(H/2).
    const std::int32_t tau2 = encoder_->doubled_threshold(image);
    const std::size_t tob =
        static_cast<std::size_t>((tau2 + 1) / 2) == 0 ? 1
                                                      : static_cast<std::size_t>((tau2 + 1) / 2);

    event_counts local;
    bs::bitstream bits(dim);

    // Dimension-major traversal: one popcount/binarize pass per dimension,
    // pixels streamed bit-serially (Fig. 5's red L traversal).
    for (std::size_t d = 0; d < dim; ++d) {
        core::popcount_binarizer binarizer(pixels, tob);
        for (std::size_t p = 0; p < pixels; ++p) {
            // Data stream fetch (register read + UST lookup).
            const std::uint8_t q = encoder_->quantize_intensity(image[p]);
            const bs::bitstream& data_stream = ust.fetch(q);
            local.reg_scalar_reads += 1;
            local.ust_fetches += 1;

            // Sobol scalar fetch (BRAM read + UST lookup).
            const std::uint8_t s = encoder_->sobol_row(p)[d];
            const bs::bitstream& sobol_stream = ust.fetch(s);
            local.bram_scalar_reads += 1;
            local.ust_fetches += 1;

            // Fig. 4 unary comparator.
            const bool level_bit = bs::unary_compare_geq(data_stream, sobol_stream);
            local.comparator_ops += 1;

            if (level_bit) local.counter_increments += 1;
            binarizer.feed(level_bit);
            local.cycles += 1;
        }
        if (binarizer.sign_bit()) {
            local.sign_latches += 1;
        } else {
            bits.set_bit(d, true); // below threshold: -1
        }
    }

    if (events != nullptr) *events += local;
    return hdc::hypervector(std::move(bits));
}

} // namespace uhd::sim
