// Bit-serial functional simulation of the uHD datapath (paper Fig. 5).
//
// For every hypervector dimension the simulator fetches the pixel's unary
// data stream and the Sobol scalar's unary stream from the UST, runs the
// Fig. 4 comparator gate-for-gate, and feeds the resulting bit into the
// popcount binarizer with its masking-logic threshold. The emitted image
// hypervector is proven (by tests) bit-identical to the fast
// uhd_encoder::encode_sign() path, and the collected event counts drive the
// uhd::hw energy model for the per-image rows of Table II.
#ifndef UHD_SIM_UHD_DATAPATH_HPP
#define UHD_SIM_UHD_DATAPATH_HPP

#include <cstdint>
#include <span>

#include "uhd/core/binarizer.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/sim/events.hpp"

namespace uhd::sim {

/// Cycle-semantics simulator of the Fig. 5 uHD pipeline.
class uhd_datapath_sim {
public:
    /// Bind to an encoder (its Sobol bank and UST are the simulated BRAM).
    explicit uhd_datapath_sim(const core::uhd_encoder& encoder);

    /// Run one image through the pipeline; returns the binarized image
    /// hypervector and, when `events` is non-null, accumulates datapath
    /// event counts into it.
    [[nodiscard]] hdc::hypervector run(std::span<const std::uint8_t> image,
                                       event_counts* events = nullptr) const;

private:
    const core::uhd_encoder* encoder_;
};

} // namespace uhd::sim

#endif // UHD_SIM_UHD_DATAPATH_HPP
