// Switching/access event counters produced by the datapath simulations.
// These are the activity inputs of the uhd::hw energy model: each event
// maps to one operation of a Fig. 3-5 module.
#ifndef UHD_SIM_EVENTS_HPP
#define UHD_SIM_EVENTS_HPP

#include <cstdint>
#include <string>

namespace uhd::sim {

/// Per-run counts of datapath events.
struct event_counts {
    std::uint64_t cycles = 0;             ///< pipeline cycles simulated
    std::uint64_t ust_fetches = 0;        ///< unary stream table lookups
    std::uint64_t bram_scalar_reads = 0;  ///< quantized Sobol scalar reads
    std::uint64_t reg_scalar_reads = 0;   ///< processing-data register reads
    std::uint64_t comparator_ops = 0;     ///< unary or binary comparisons
    std::uint64_t lfsr_steps = 0;         ///< baseline pseudo-random bits drawn
    std::uint64_t xor_binds = 0;          ///< baseline binding operations
    std::uint64_t counter_increments = 0; ///< popcount counter increments
    std::uint64_t sign_latches = 0;       ///< binarizer sign-bit latch events

    event_counts& operator+=(const event_counts& rhs) noexcept {
        cycles += rhs.cycles;
        ust_fetches += rhs.ust_fetches;
        bram_scalar_reads += rhs.bram_scalar_reads;
        reg_scalar_reads += rhs.reg_scalar_reads;
        comparator_ops += rhs.comparator_ops;
        lfsr_steps += rhs.lfsr_steps;
        xor_binds += rhs.xor_binds;
        counter_increments += rhs.counter_increments;
        sign_latches += rhs.sign_latches;
        return *this;
    }

    /// Multi-line human-readable rendering.
    [[nodiscard]] std::string to_string() const;
};

} // namespace uhd::sim

#endif // UHD_SIM_EVENTS_HPP
