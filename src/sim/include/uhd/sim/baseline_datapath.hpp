// Bit-serial functional simulation of the baseline HDC datapath
// (paper Fig. 1(b)): per pixel, bind the position and level hypervector
// bits with XOR, popcount the bound bits per dimension, and binarize with
// the separate subtractor/comparator stage against H/2.
//
// Tests prove the emitted hypervector bit-identical to
// baseline_encoder::encode_sign(); event counts feed the hw energy model.
#ifndef UHD_SIM_BASELINE_DATAPATH_HPP
#define UHD_SIM_BASELINE_DATAPATH_HPP

#include <cstdint>
#include <span>

#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/sim/events.hpp"

namespace uhd::sim {

/// Cycle-semantics simulator of the baseline bind/bundle/binarize pipeline.
class baseline_datapath_sim {
public:
    explicit baseline_datapath_sim(const hdc::baseline_encoder& encoder);

    /// Run one image; returns the binarized image hypervector and
    /// accumulates event counts when `events` is non-null. Each consumed
    /// random bit is charged as one LFSR step (the paper's hardware
    /// regenerates P and L dynamically).
    [[nodiscard]] hdc::hypervector run(std::span<const std::uint8_t> image,
                                       event_counts* events = nullptr) const;

private:
    const hdc::baseline_encoder* encoder_;
};

} // namespace uhd::sim

#endif // UHD_SIM_BASELINE_DATAPATH_HPP
