#include "uhd/sim/baseline_datapath.hpp"

#include "uhd/common/error.hpp"
#include "uhd/core/binarizer.hpp"

namespace uhd::sim {

baseline_datapath_sim::baseline_datapath_sim(const hdc::baseline_encoder& encoder)
    : encoder_(&encoder) {}

hdc::hypervector baseline_datapath_sim::run(std::span<const std::uint8_t> image,
                                            event_counts* events) const {
    UHD_REQUIRE(image.size() == encoder_->pixels(), "image size mismatch");
    const std::size_t dim = encoder_->dim();
    const std::size_t pixels = encoder_->pixels();
    const auto& positions = encoder_->positions();
    const auto& levels = encoder_->level_memory();

    event_counts local;
    bs::bitstream bits(dim);

    for (std::size_t d = 0; d < dim; ++d) {
        // The baseline thresholds at H/2 (the +1 bits in majority).
        core::popcount_binarizer binarizer(pixels);
        const std::size_t word = d / 64;
        const std::uint64_t mask = std::uint64_t{1} << (d % 64);
        for (std::size_t p = 0; p < pixels; ++p) {
            // In hardware both operand bits come from LFSR streams that are
            // regenerated every pass (dynamic generation); charge one LFSR
            // step per random bit and one level-threshold comparison.
            const bool p_bit = (positions.row_words(p)[word] & mask) != 0;
            local.lfsr_steps += 1;
            const std::size_t k = levels.level_of(image[p]);
            const bool l_bit = (levels.row_words(k)[word] & mask) != 0;
            local.lfsr_steps += 1;
            local.comparator_ops += 1;

            // Binding XOR; bit 1 encodes -1, so "plus" is bound == 0.
            const bool bound = p_bit ^ l_bit;
            local.xor_binds += 1;
            const bool plus_bit = !bound;
            if (plus_bit) local.counter_increments += 1;
            binarizer.feed(plus_bit);
            local.cycles += 1;
        }
        if (binarizer.sign_bit()) {
            local.sign_latches += 1;
        } else {
            bits.set_bit(d, true); // minus in majority: -1
        }
    }

    if (events != nullptr) *events += local;
    return hdc::hypervector(std::move(bits));
}

} // namespace uhd::sim
