#include "uhd/sim/events.hpp"

#include <sstream>

namespace uhd::sim {

std::string event_counts::to_string() const {
    std::ostringstream os;
    os << "cycles=" << cycles << " ust_fetches=" << ust_fetches
       << " bram_scalar_reads=" << bram_scalar_reads
       << " reg_scalar_reads=" << reg_scalar_reads
       << " comparator_ops=" << comparator_ops << " lfsr_steps=" << lfsr_steps
       << " xor_binds=" << xor_binds << " counter_increments=" << counter_increments
       << " sign_latches=" << sign_latches;
    return os.str();
}

} // namespace uhd::sim
