// Dynamic uHD demo — both "dynamic" senses of the paper's title in one
// program:
//
//  1. Dynamic (online) training: uHD's encoder is deterministic and
//     single-iteration, so class hypervectors can absorb a stream of
//     labeled samples one at a time (partial_fit) and batches can be
//     folded in afterwards through the mini-batch parallel engine
//     (fit_parallel — bit-identical to the sequential fit for any thread
//     count).
//  2. Dynamic (dimension-sliced) inference: the early-exit cascade answers
//     easy queries from a D/8 prefix of every packed class row and only
//     escalates to D/4, D/2, and full D when the top-1/top-2 Hamming
//     margin is too small; thresholds are calibrated on held-out data for
//     a target agreement rate with the full-D answer.
//
//   UHD_STREAM_N=800 UHD_TARGET_AGREE=99 ./dynamic_encoding_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/sim/uhd_datapath.hpp"

int main() {
    using namespace uhd;
    const auto stream_n = static_cast<std::size_t>(env_int("UHD_STREAM_N", 400));
    const double target =
        static_cast<double>(env_int("UHD_TARGET_AGREE", 99)) / 100.0;

    const data::dataset stream = data::make_synthetic_digits(stream_n, 11);
    const data::dataset batch = data::make_synthetic_digits(stream_n, 33);
    const data::dataset calib = data::make_synthetic_digits(200, 44);
    const data::dataset holdout = data::make_synthetic_digits(250, 22);

    core::uhd_config config;
    config.dim = 2048;
    core::uhd_model model(config, stream.shape(), 10, hdc::train_mode::raw_sums,
                          hdc::query_mode::binarized);

    // --- dynamic training: stream first, then a parallel batch ------------
    std::printf("online training on a stream of %zu labeled images\n", stream.size());
    std::printf("%8s %12s\n", "seen", "holdout (%)");
    const std::size_t report_every = std::max<std::size_t>(1, stream.size() / 4);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        model.partial_fit(stream.image(i), stream.label(i));
        if ((i + 1) % report_every == 0 || i + 1 == stream.size()) {
            std::printf("%8zu %12.2f\n", i + 1, 100.0 * model.evaluate(holdout));
        }
    }

    thread_pool& pool = thread_pool::shared();
    stopwatch watch;
    model.fit_parallel(batch, &pool);
    const double fit_seconds = watch.seconds(); // before the evaluate below
    std::printf("folded in a batch of %zu images via fit_parallel (%zu compute "
                "threads) in %.3fs -> holdout %.2f%%\n",
                batch.size(), pool.size() + 1, fit_seconds,
                100.0 * model.evaluate(holdout, nullptr, &pool));

    // One mini-batch parallel retraining epoch (the AdaptHD-style
    // extension; bit-identical to the sequential retrain).
    const std::size_t updates = model.retrain(stream, 1, &pool);
    std::printf("after 1 retrain epoch (%zu updates): %.2f%%\n", updates,
                100.0 * model.evaluate(holdout, nullptr, &pool));

    // --- dynamic inference: the calibrated early-exit cascade -------------
    const hdc::dynamic_query_policy policy =
        model.calibrate_dynamic(calib, target, &pool);
    const std::size_t words = model.packed_class_memory().words_per_class();
    const std::size_t full_words = model.classes() * words;

    std::printf("\ncascade calibrated for %.0f%% agreement (windows in 64-bit "
                "words per class row, full row = %zu words):\n",
                100.0 * target, words);
    hdc::dynamic_query_summary summary(policy.stages().size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < holdout.size(); ++i) {
        hdc::dynamic_query_stats stats;
        const std::size_t answer = model.predict_dynamic(holdout.image(i), policy,
                                                         &stats);
        summary.record(stats, answer == model.predict(holdout.image(i)));
        if (answer == holdout.label(i)) ++correct;
    }
    for (std::size_t s = 0; s < policy.stages().size(); ++s) {
        const auto& stage = policy.stages()[s];
        std::printf("  stage %zu: window %3zu words (D/%zu)  exits %3zu/%zu\n", s,
                    stage.window_words, words / stage.window_words,
                    summary.exits[s], holdout.size());
    }
    std::printf("agreement with full-D inference: %zu/%zu (%.1f%%)\n",
                summary.agreements, holdout.size(),
                100.0 * summary.agreement_rate());
    std::printf("accuracy: %.2f%%, avg packed words scanned per query: %.1f/%zu "
                "(%.1f%%)\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(holdout.size()),
                summary.avg_words_scanned(), full_words,
                100.0 * summary.avg_words_scanned() /
                    static_cast<double>(full_words));

    // The hardware datapath still agrees bit-for-bit with the software
    // encoder — the property that makes the streamed model deployable on
    // the Fig. 5 pipeline without retraining.
    const sim::uhd_datapath_sim datapath(model.encoder());
    const auto hv_hw = datapath.run(holdout.image(0));
    const auto hv_sw = model.encoder().encode_sign(holdout.image(0));
    std::printf("hardware/software hypervector match: %s\n",
                hv_hw == hv_sw ? "bit-identical" : "MISMATCH");
    return 0;
}
