// Dynamic (online) hypervector encoding demo — the "Dynamic" in the paper's
// title: because uHD's encoder is deterministic and single-iteration, class
// hypervectors can be built incrementally on an edge device, one labeled
// sample at a time, with no iterative re-generation of item memories.
//
// The demo streams training images one by one, tracks accuracy on a held-out
// set as the model absorbs data, and contrasts the uHD stream-table encode
// path (what the Fig. 5 hardware executes) against the software fast path.
//
//   UHD_STREAM_N=800 ./dynamic_encoding_demo
#include <cstdio>

#include "uhd/common/config.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/sim/uhd_datapath.hpp"

int main() {
    using namespace uhd;
    const auto stream_n = static_cast<std::size_t>(env_int("UHD_STREAM_N", 600));

    const data::dataset stream = data::make_synthetic_digits(stream_n, 11);
    const data::dataset holdout = data::make_synthetic_digits(250, 22);

    core::uhd_config config;
    config.dim = 1024;
    core::uhd_model model(config, stream.shape(), 10, hdc::train_mode::raw_sums);

    std::printf("online training on a stream of %zu labeled images\n", stream.size());
    std::printf("%8s %12s\n", "seen", "holdout (%)");
    for (std::size_t i = 0; i < stream.size(); ++i) {
        model.partial_fit(stream.image(i), stream.label(i));
        if ((i + 1) % (stream.size() / 6) == 0 || i + 1 == stream.size()) {
            std::printf("%8zu %12.2f\n", i + 1, 100.0 * model.evaluate(holdout));
        }
    }

    // One optional retraining epoch (the AdaptHD-style extension).
    const std::size_t updates = model.retrain(stream, 1);
    std::printf("after 1 retrain epoch (%zu updates): %.2f%%\n", updates,
                100.0 * model.evaluate(holdout));

    // Show that the hardware datapath agrees bit-for-bit with the software
    // encoder on a fresh sample — the property that makes the model
    // deployable on the Fig. 5 pipeline without retraining.
    const sim::uhd_datapath_sim datapath(model.encoder());
    const auto hv_hw = datapath.run(holdout.image(0));
    const auto hv_sw = model.encoder().encode_sign(holdout.image(0));
    std::printf("hardware/software hypervector match: %s\n",
                hv_hw == hv_sw ? "bit-identical" : "MISMATCH");
    return 0;
}
