// Quickstart: train a uHD classifier in one pass, evaluate it, save it to
// disk, and reload it.
//
//   ./quickstart
//
// Everything is deterministic: rerunning prints identical numbers.
#include <cstdio>
#include <filesystem>
#include <string>

#include "uhd/common/cpu_features.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"

int main() {
    using namespace uhd;

    // 0. Which kernel engine is this process actually running? The build
    //    carries every backend; the CPU probe picks the widest admissible
    //    one at startup (override with UHD_BACKEND=scalar|swar|avx2 — an
    //    unknown or unsupported value fails here, loudly).
    std::printf("kernel backend: %s (override: %s)\n", kernels::active().name,
                kernels::backend_override().empty()
                    ? "none"
                    : std::string(kernels::backend_override()).c_str());
    std::printf("cpu features:   %s\n", cpu().to_string().c_str());

    // 1. Data: a synthetic MNIST-like digit dataset (28x28 grayscale,
    //    10 classes). Substitute your own data::dataset to use real images.
    const data::dataset train = data::make_synthetic_digits(2000, /*seed=*/1);
    const data::dataset test = data::make_synthetic_digits(500, /*seed=*/2);
    std::printf("train: %zu images, test: %zu images, %zux%zu pixels\n",
                train.size(), test.size(), train.shape().rows, train.shape().cols);

    // 2. Configure uHD: D = 1K hypervectors, xi = 16 quantization levels,
    //    deterministic Sobol thresholds — the paper's default design point.
    core::uhd_config config;
    config.dim = 1024;

    // 3. Train. One pass, no iterations, no randomness to tune.
    const core::uhd_model model =
        core::uhd_model::train(config, train, hdc::train_mode::raw_sums);

    // 4. Evaluate.
    data::confusion_matrix matrix(model.classes());
    const double accuracy = model.evaluate(test, &matrix);
    std::printf("accuracy @ D=1K: %.2f%%  (macro-F1 %.3f)\n", 100.0 * accuracy,
                matrix.macro_f1());

    // 5. Persist and reload: only the config and class vectors are stored;
    //    the Sobol bank is rebuilt deterministically on load.
    const auto path = std::filesystem::temp_directory_path() / "uhd_quickstart.model";
    model.save_file(path.string());
    const core::uhd_model loaded = core::uhd_model::load_file(path.string());
    std::printf("reloaded model accuracy: %.2f%% (file: %s, %ju bytes)\n",
                100.0 * loaded.evaluate(test), path.c_str(),
                static_cast<std::uintmax_t>(std::filesystem::file_size(path)));
    std::filesystem::remove(path);

    // 6. Classify one image.
    const std::size_t predicted = loaded.predict(test.image(0));
    std::printf("first test image: predicted class %zu, true class %zu\n", predicted,
                test.label(0));
    return 0;
}
