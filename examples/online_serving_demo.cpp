// Online serving demo: answer queries and learn at the same time — the
// paper's "lightweight and dynamic" pitch as a running system.
//
//   ./online_serving_demo
//
// A model is cold-started on a tenth of the training data and put behind
// the micro-batching serving engine. Client threads then query it
// continuously while the trainer streams the remaining images through
// partial_fit on its private model, publishing an immutable snapshot
// (one pointer swap) every few updates. Queries are never blocked by
// training, every answer comes from a fully-finalized snapshot, and the
// printed accuracy shows the served model improving mid-flight.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "uhd/common/kernels.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/serve/inference_engine.hpp"

int main() {
    using namespace uhd;

    std::printf("kernel backend: %s\n", kernels::active().name);

    // 1. Data: cold-start on the first tenth, stream the rest online.
    const data::dataset train = data::make_synthetic_digits(2000, /*seed=*/1);
    const data::dataset test = data::make_synthetic_digits(500, /*seed=*/2);
    const std::size_t cold = train.size() / 10;

    core::uhd_config config;
    config.dim = 1024;
    core::uhd_model model(config, train.shape(), train.num_classes(),
                          hdc::train_mode::raw_sums, hdc::query_mode::binarized);
    {
        // Cold-start model: only the first tenth of the data.
        data::dataset cold_set(train.shape(), train.num_classes());
        for (std::size_t i = 0; i < cold; ++i) {
            const auto img = train.image(i);
            cold_set.add(std::vector<std::uint8_t>(img.begin(), img.end()),
                         train.label(i));
        }
        model.fit_parallel(cold_set, &thread_pool::shared());
    }
    const double accuracy_before = model.evaluate(test);
    std::printf("cold-start accuracy (%zu images): %.2f%%\n", cold,
                100.0 * accuracy_before);

    // 2. Put the cold model behind the serving engine. The engine holds an
    //    immutable snapshot; the model object stays private to the trainer.
    serve::engine_options options;
    options.workers = 2;
    options.max_batch = 16;
    serve::inference_engine engine(model.snapshot(), options);

    // 3. Pre-encode the query pool (clients measure serving, not encoding).
    std::vector<std::vector<std::int32_t>> queries;
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<std::int32_t> encoded(config.dim);
        model.encoder().encode(test.image(i), encoded);
        queries.push_back(std::move(encoded));
    }

    // 4. Clients query while the trainer learns — concurrently.
    std::atomic<bool> training_done{false};
    std::atomic<std::uint64_t> answered_during_training{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 2; ++c) {
        clients.emplace_back([&, c] {
            std::size_t i = c;
            while (!training_done.load(std::memory_order_acquire)) {
                (void)engine.predict(queries[i % queries.size()]);
                answered_during_training.fetch_add(1, std::memory_order_relaxed);
                i += 1;
            }
        });
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = cold; i < train.size(); ++i) {
        model.partial_fit(train.image(i), train.label(i));
        if ((i - cold + 1) % 100 == 0) {
            engine.publish(model.snapshot()); // one pointer swap
        }
    }
    engine.publish(model.snapshot());
    training_done.store(true, std::memory_order_release);
    for (auto& t : clients) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // 5. The served state is now the fully-trained model: score it through
    //    the engine itself.
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (engine.predict(queries[i]) == test.label(i)) ++correct;
    }
    const double accuracy_after =
        static_cast<double>(correct) / static_cast<double>(test.size());

    const serve::serve_stats stats = engine.stats();
    std::printf("served %llu queries concurrently with %zu online updates "
                "(%.2fs, %llu snapshot swaps, max batch %llu)\n",
                static_cast<unsigned long long>(answered_during_training.load()),
                train.size() - cold, seconds,
                static_cast<unsigned long long>(stats.snapshot_swaps),
                static_cast<unsigned long long>(stats.max_batch_observed));
    std::printf("accuracy before online learning: %.2f%%\n",
                100.0 * accuracy_before);
    std::printf("accuracy after  online learning: %.2f%% (served from "
                "snapshot v%llu)\n",
                100.0 * accuracy_after,
                static_cast<unsigned long long>(stats.snapshot_version));
    return 0;
}
