// Text language identification with trigram hypervectors — the classic HDC
// NLP task (paper reference [3]), demonstrating that the same bind/permute/
// bundle primitives behind the image pipeline handle symbolic sequences.
//
// Three synthetic "languages" are first-order Markov chains over a small
// alphabet; one class hypervector per language is bundled from trigram
// encodings, and held-out samples are classified by cosine similarity.
#include <cstdio>
#include <vector>

#include "uhd/common/rng.hpp"
#include "uhd/hdc/ngram.hpp"
#include "uhd/hdc/similarity.hpp"

namespace {

constexpr std::size_t alphabet = 16;

std::vector<std::size_t> sample_text(std::size_t language, std::size_t length,
                                     uhd::xoshiro256ss& rng) {
    std::vector<std::size_t> text;
    std::size_t state = rng.next_below(alphabet);
    for (std::size_t t = 0; t < length; ++t) {
        text.push_back(state);
        const std::size_t stride = 1 + 2 * language;
        if (rng.next_unit() < 0.8) {
            state = (state * stride + language + 1) % alphabet;
        } else {
            state = rng.next_below(alphabet);
        }
    }
    return text;
}

} // namespace

int main() {
    using namespace uhd;
    const hdc::symbol_item_memory symbols(alphabet, 4096, /*seed=*/7);
    const hdc::ngram_encoder encoder(symbols, /*n=*/3);
    xoshiro256ss rng(99);

    // Train: bundle 20 samples of 200 symbols per language.
    std::vector<hdc::hypervector> classes;
    for (std::size_t lang = 0; lang < 3; ++lang) {
        hdc::accumulator acc(encoder.dim());
        for (int sample = 0; sample < 20; ++sample) {
            acc.add_values(encoder.encode(sample_text(lang, 200, rng)).values());
        }
        classes.push_back(acc.sign());
        std::printf("language %zu class hypervector trained (%zu trigram windows/sample)\n",
                    lang, static_cast<std::size_t>(200 - 2));
    }

    // Classify held-out text of decreasing length: hypervector similarity
    // sharpens as evidence accumulates.
    std::printf("\n%10s %10s\n", "length", "accuracy");
    for (const std::size_t length : {10u, 25u, 50u, 100u, 200u}) {
        std::size_t correct = 0;
        const std::size_t trials = 120;
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const std::size_t truth = trial % 3;
            const auto query = encoder.encode_sign(sample_text(truth, length, rng));
            std::size_t best = 0;
            double best_similarity = -2.0;
            for (std::size_t c = 0; c < classes.size(); ++c) {
                const double similarity = hdc::cosine(query, classes[c]);
                if (similarity > best_similarity) {
                    best_similarity = similarity;
                    best = c;
                }
            }
            if (best == truth) ++correct;
        }
        std::printf("%10zu %9.1f%%\n", length,
                    100.0 * static_cast<double>(correct) / static_cast<double>(trials));
    }
    return 0;
}
