// Image classification with uHD vs the baseline HDC across the paper's six
// evaluation datasets (synthetic analogues; real MNIST IDX files are used
// automatically when found under ./data/mnist or $UHD_MNIST_DIR).
//
//   UHD_TRAIN_N=2000 UHD_TEST_N=500 UHD_DIM=2048 ./image_classification
#include <cstdio>

#include "uhd/common/config.hpp"
#include "uhd/common/stopwatch.hpp"
#include "uhd/core/encoder.hpp"
#include "uhd/data/idx.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hdc/baseline_encoder.hpp"
#include "uhd/hdc/classifier.hpp"

int main() {
    using namespace uhd;
    const auto train_n = static_cast<std::size_t>(env_int("UHD_TRAIN_N", 1200));
    const auto test_n = static_cast<std::size_t>(env_int("UHD_TEST_N", 400));
    const auto dim = static_cast<std::size_t>(env_int("UHD_DIM", 1024));

    std::printf("uHD vs baseline HDC | D=%zu | %zu train / %zu test per dataset\n\n",
                dim, train_n, test_n);
    std::printf("%-14s %10s %10s %12s %12s\n", "dataset", "uHD (%)", "base (%)",
                "uHD t(s)", "base t(s)");

    for (const auto kind : data::all_dataset_kinds()) {
        const auto info = data::info_for(kind);
        data::dataset train = data::make_synthetic(kind, train_n, 42).to_grayscale();
        data::dataset test = data::make_synthetic(kind, test_n, 4242).to_grayscale();
        if (kind == data::dataset_kind::mnist) {
            // Prefer real MNIST when the IDX files exist.
            const auto dir = env_string("UHD_MNIST_DIR", "data/mnist");
            if (auto real = data::try_load_mnist(dir)) {
                std::printf("(using real MNIST from %s)\n", dir.c_str());
                train = std::move(real->first);
                test = std::move(real->second);
            }
        }

        stopwatch uhd_watch;
        core::uhd_config ucfg;
        ucfg.dim = dim;
        const core::uhd_encoder uenc(ucfg, train.shape());
        hdc::hd_classifier<core::uhd_encoder> uhd_clf(
            uenc, info.classes, hdc::train_mode::raw_sums, hdc::query_mode::integer);
        uhd_clf.fit(train);
        const double uhd_accuracy = uhd_clf.evaluate(test);
        const double uhd_seconds = uhd_watch.seconds();

        stopwatch base_watch;
        hdc::baseline_config bcfg;
        bcfg.dim = dim;
        const hdc::baseline_encoder benc(bcfg, train.shape());
        hdc::hd_classifier<hdc::baseline_encoder> base_clf(benc, info.classes);
        base_clf.fit(train);
        const double base_accuracy = base_clf.evaluate(test);
        const double base_seconds = base_watch.seconds();

        std::printf("%-14s %10.2f %10.2f %12.2f %12.2f\n", info.name.c_str(),
                    100.0 * uhd_accuracy, 100.0 * base_accuracy, uhd_seconds,
                    base_seconds);
    }

    std::printf("\nuHD column: raw-sum accumulation + integer cosine (the paper's\n"
                "non-binary Sigma L_i formulation); baseline column: classical\n"
                "binarized HDC flow (Fig. 1(b)).\n");
    return 0;
}
