// Hardware cost explorer: inspect the gate-level inventories of the paper's
// datapath modules, the three design checkpoints, and a Table-II-style
// summary for a configurable design point; then run the bit-serial datapath
// simulation of one image and derive event-driven energy.
//
//   UHD_DIM=2048 UHD_ROWS=28 UHD_COLS=28 ./hardware_cost_explorer
#include <cstdio>

#include "uhd/common/config.hpp"
#include "uhd/data/synthetic.hpp"
#include "uhd/hw/modules.hpp"
#include "uhd/hw/report.hpp"
#include "uhd/sim/baseline_datapath.hpp"
#include "uhd/sim/uhd_datapath.hpp"

namespace {

void print_module(const uhd::hw::hw_module& m) {
    const auto& lib = uhd::hw::cell_library::generic_45nm();
    std::printf("  %-34s cells=%4zu  area=%8.1f um^2  delay=%6.0f ps  E/op=%7.2f fJ\n",
                m.name.c_str(), m.cells.total(), m.area_um2(lib), m.delay_ps(lib),
                m.energy_per_op_fj(lib));
}

} // namespace

int main() {
    using namespace uhd;
    hw::design_point point;
    point.dim = static_cast<std::size_t>(env_int("UHD_DIM", 1024));
    point.pixels = static_cast<std::size_t>(env_int("UHD_ROWS", 28)) *
                   static_cast<std::size_t>(env_int("UHD_COLS", 28));

    std::printf("== module inventory (generic 45nm library) ==\n");
    print_module(hw::make_unary_comparator(16));
    print_module(hw::make_binary_comparator(10));
    print_module(hw::make_counter(10));
    print_module(hw::make_counter_comparator_generator(10));
    print_module(hw::make_lfsr(32));
    print_module(hw::make_ust_decoder(16));
    print_module(hw::make_popcount_mask_binarizer(point.pixels));
    print_module(hw::make_popcount_subtract_binarizer(point.pixels));

    const hw::hdc_cost_model model;
    std::printf("\n== design checkpoints (D=%zu, H=%zu) ==\n", point.dim, point.pixels);
    std::printf("  [1] stream bit generation: uHD %.3f fJ  vs  baseline %.3f fJ\n",
                model.uhd_bitgen_energy_fj(point), model.baseline_bitgen_energy_fj(point));
    std::printf("  [2] comparator per HV:     uHD %.3f pJ  vs  baseline %.3f pJ\n",
                model.uhd_comparator_energy_pj_per_hv(point),
                model.baseline_comparator_energy_pj_per_hv(point));
    std::printf("  [3] accum+binarize/feat:   uHD %.3f pJ  vs  baseline %.3f pJ\n",
                model.uhd_accbin_energy_pj_per_feature(point),
                model.baseline_accbin_energy_pj_per_feature(point));

    std::printf("\n== per-HV / per-image summary ==\n");
    const auto show = [](const char* label, const hw::cost_summary& s) {
        std::printf("  %-22s energy=%12.2f pJ  area=%9.1f um^2  delay=%10.0f ps  AxD=%.3e m^2*s\n",
                    label, s.energy_pj, s.area_um2, s.delay_ps, s.area_delay_m2s());
    };
    show("uHD per HV", model.uhd_per_hv(point));
    show("baseline per HV", model.baseline_per_hv(point));
    show("uHD per image", model.uhd_per_image(point));
    show("baseline per image", model.baseline_per_image(point));
    std::printf("  system energy efficiency (baseline/uHD): %.1fx\n",
                model.system_efficiency_ratio(point));

    std::printf("\n== bit-serial datapath simulation of one image ==\n");
    const auto ds = data::make_synthetic_digits(1, 7);
    core::uhd_config ucfg;
    ucfg.dim = point.dim;
    const core::uhd_encoder uenc(ucfg, ds.shape());
    sim::event_counts uhd_events;
    (void)sim::uhd_datapath_sim(uenc).run(ds.image(0), &uhd_events);
    std::printf("  uHD:      %s\n", uhd_events.to_string().c_str());

    hdc::baseline_config bcfg;
    bcfg.dim = point.dim;
    const hdc::baseline_encoder benc(bcfg, ds.shape());
    sim::event_counts base_events;
    (void)sim::baseline_datapath_sim(benc).run(ds.image(0), &base_events);
    std::printf("  baseline: %s\n", base_events.to_string().c_str());

    std::printf("\n(uHD performs zero LFSR steps and zero binding XORs: the\n"
                "position hypervectors and the multiplication are gone.)\n");
    return 0;
}
