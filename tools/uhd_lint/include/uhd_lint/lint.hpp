// uhd_lint — the project-invariant static analyzer.
//
// The repo's architectural contracts (hermetic per-ISA kernel TUs, a
// dispatch-only kernel registry with a pinned scalar oracle per slot,
// versioned bench JSON schemas, self-contained public headers) used to be
// enforced by comments and reviewer memory. This analyzer makes them
// machine-checked: it loads the source tree into a comment/string-stripped
// token view and runs one pass per invariant, reporting findings as
// `file:line: [rule] message` and a nonzero exit when any fire.
//
// It deliberately has no libclang dependency: every rule is a structural
// property of the tree (which files name which tokens, how many slots an
// aggregate initializer carries, which versions a doc table pins), so a
// purpose-built lexer is both sufficient and fast enough to run on every
// ctest invocation. Whole-program semantic checks stay with the industry
// layer (`uhd_tidy`, GCC -fanalyzer) wired up next to this tool in CI.
//
// Rules (see rules.cpp for the fine print):
//   isa-hermeticity    — intrinsics headers / __AVX*/__SSE* guards /
//                        _mm* calls only in the designated backend TUs
//   kernel-table-parity— every kernel_table member is defined and slotted
//                        in every registered backend TU
//   dispatch-only      — nothing outside the registry TUs names the
//                        backend detail namespace or repins the backend
//   bench-schema-sync  — bench/*.cpp schema_version emissions match the
//                        table documented in bench/README.md
//   header-hygiene     — public headers carry include guards and directly
//                        include what they use (std symbol map)
#ifndef UHD_LINT_LINT_HPP
#define UHD_LINT_LINT_HPP

#include <cstddef>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace uhd_lint {

/// One rule violation, anchored to a file and (1-based) line. line == 0
/// anchors a whole-file or whole-project finding (e.g. a missing file).
struct finding {
    std::string rule;
    std::string file;  ///< path relative to the scanned root, '/'-separated
    std::size_t line = 0;
    std::string message;
};

/// One source file in the scanned tree: the raw bytes plus a "code" view
/// of identical length where comments, string literals, and character
/// literals are blanked to spaces (newlines preserved), so token scans
/// cannot be fooled by prose or emitted JSON text.
struct source_file {
    std::string rel_path;  ///< '/'-separated path relative to the root
    std::string raw;
    std::string code;

    /// 1-based line number of byte `offset` into raw/code.
    [[nodiscard]] std::size_t line_of(std::size_t offset) const noexcept;
};

/// Blank comments and string/character literals (handles //, /*...*/,
/// "...", '...', and R"delim(...)delim") to spaces, preserving length and
/// newlines so offsets and line numbers stay valid.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view raw);

/// True when code[pos..] starts with `token` bounded by non-identifier
/// characters on both sides.
[[nodiscard]] bool token_at(std::string_view code, std::size_t pos,
                            std::string_view token) noexcept;

/// Offset of the first identifier-boundary occurrence of `token` at or
/// after `from`; npos when absent.
[[nodiscard]] std::size_t find_token(std::string_view code, std::string_view token,
                                     std::size_t from = 0) noexcept;

/// The scanned tree: every source file under the root's src/, tests/,
/// bench/, examples/, and tools/ directories (extensions .hpp, .h, .cpp,
/// .inc), plus bench/README.md. Directories named lint_fixtures, build*,
/// or starting with '.' are skipped so fixture trees and build output
/// never leak into a real-tree scan.
struct project {
    std::filesystem::path root;
    std::vector<source_file> files;

    /// File by exact relative path; nullptr when absent.
    [[nodiscard]] const source_file* find(std::string_view rel_path) const noexcept;
};

/// Load a project tree from disk. Throws std::runtime_error when root is
/// not a directory.
[[nodiscard]] project load_project(const std::filesystem::path& root);

/// One registered rule.
struct rule {
    std::string_view id;
    std::string_view summary;
    void (*run)(const project&, std::vector<finding>&);
};

/// Every rule this analyzer knows, in the order they run.
[[nodiscard]] std::span<const rule> all_rules() noexcept;

/// Run the named rules (all of them when `only` is empty) over a loaded
/// project. Unknown names throw std::runtime_error.
[[nodiscard]] std::vector<finding> run_rules(const project& p,
                                             std::span<const std::string> only = {});

} // namespace uhd_lint

#endif // UHD_LINT_LINT_HPP
