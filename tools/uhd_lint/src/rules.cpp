// The five project-invariant rules of uhd_lint.
//
// Each rule is a structural property of the tree that the build system and
// reviewers used to guard by hand. They all operate on the stripped "code"
// view (comments and literals blanked) except bench-schema-sync, which by
// its nature inspects emitted JSON text inside string literals and the
// markdown doc table.
#include "uhd_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace uhd_lint {

namespace {

[[nodiscard]] bool ident_char(char c) noexcept {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

[[nodiscard]] std::string basename_of(std::string_view rel) {
    const std::size_t slash = rel.rfind('/');
    return std::string(slash == std::string_view::npos ? rel : rel.substr(slash + 1));
}

[[nodiscard]] std::size_t skip_ws(std::string_view s, std::size_t pos) noexcept {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
        ++pos;
    }
    return pos;
}

[[nodiscard]] std::string read_ident(std::string_view s, std::size_t pos) {
    std::size_t end = pos;
    while (end < s.size() && ident_char(s[end])) ++end;
    return std::string(s.substr(pos, end - pos));
}

/// Offset just past the brace matching the '{' at `open` (paren/brace/
/// bracket aware); npos when unbalanced.
[[nodiscard]] std::size_t match_brace(std::string_view s, std::size_t open) noexcept {
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '{' || c == '(' || c == '[') ++depth;
        if (c == '}' || c == ')' || c == ']') {
            --depth;
            if (depth == 0) return i + 1;
        }
    }
    return std::string_view::npos;
}

/// The set of headers a file includes directly (both <...> and "..."
/// spellings, path as written).
[[nodiscard]] std::set<std::string> direct_includes(const source_file& f) {
    std::set<std::string> out;
    // Includes survive in raw; the "..." spelling is blanked in code, so
    // parse raw but only lines whose stripped form still starts with '#'
    // (i.e. not inside a comment).
    std::size_t pos = 0;
    while (pos < f.raw.size()) {
        std::size_t eol = f.raw.find('\n', pos);
        if (eol == std::string::npos) eol = f.raw.size();
        const std::string_view raw_line(f.raw.data() + pos, eol - pos);
        const std::string_view code_line(f.code.data() + pos, eol - pos);
        const std::size_t hash = skip_ws(code_line, 0);
        if (hash < code_line.size() && code_line[hash] == '#') {
            const std::size_t kw = skip_ws(code_line, hash + 1);
            if (read_ident(code_line, kw) == "include") {
                const std::size_t open = raw_line.find_first_of("<\"", kw);
                if (open != std::string_view::npos) {
                    const char close = raw_line[open] == '<' ? '>' : '"';
                    const std::size_t end = raw_line.find(close, open + 1);
                    if (end != std::string_view::npos) {
                        out.emplace(raw_line.substr(open + 1, end - open - 1));
                    }
                }
            }
        }
        pos = eol + 1;
    }
    return out;
}

void add(std::vector<finding>& out, std::string_view rule, const source_file& f,
         std::size_t offset, std::string message) {
    out.push_back({std::string(rule), f.rel_path, f.line_of(offset),
                   std::move(message)});
}

// --- rule: isa-hermeticity --------------------------------------------------

constexpr std::string_view kIsaHermeticity = "isa-hermeticity";

/// TUs allowed to contain ISA-specific intrinsics and guards: the per-ISA
/// backend translation units and their .inc expansion fragments.
[[nodiscard]] bool hermetic_tu(std::string_view rel) {
    if (rel.ends_with(".inc")) return true;
    const std::string base = basename_of(rel);
    return base == "kernels_avx2.cpp" || base == "kernels_avx512.cpp";
}

void rule_isa_hermeticity(const project& p, std::vector<finding>& out) {
    static constexpr std::array<std::string_view, 12> kIntrinsicHeaders = {
        "immintrin.h", "x86intrin.h",  "x86gprintrin.h", "xmmintrin.h",
        "emmintrin.h", "pmmintrin.h",  "tmmintrin.h",    "smmintrin.h",
        "nmmintrin.h", "wmmintrin.h",  "ammintrin.h",    "arm_neon.h",
    };
    static constexpr std::array<std::string_view, 4> kBannedPrefixes = {
        "__AVX", "__SSE", "_mm_", "_mm256_",
    };
    for (const source_file& f : p.files) {
        if (f.rel_path.ends_with(".md") || hermetic_tu(f.rel_path)) continue;
        // Intrinsics includes (also catches avx*intrin.h sub-headers).
        for (const std::string& inc : direct_includes(f)) {
            const bool sub_header = inc.find("intrin.h") != std::string::npos &&
                                    inc.starts_with("avx");
            if (sub_header ||
                std::find(kIntrinsicHeaders.begin(), kIntrinsicHeaders.end(),
                          inc) != kIntrinsicHeaders.end()) {
                const std::size_t at = f.raw.find(inc);
                add(out, kIsaHermeticity, f, at == std::string::npos ? 0 : at,
                    "intrinsics header <" + inc +
                        "> outside the hermetic backend TUs "
                        "(kernels_avx2.cpp / kernels_avx512.cpp / *.inc)");
            }
        }
        // ISA macros and intrinsic identifiers anywhere in code.
        for (std::size_t i = 0; i < f.code.size();) {
            if (!ident_char(f.code[i]) || (i > 0 && ident_char(f.code[i - 1]))) {
                ++i;
                continue;
            }
            const std::string ident = read_ident(f.code, i);
            for (const std::string_view prefix : kBannedPrefixes) {
                if (std::string_view(ident).starts_with(prefix) ||
                    std::string_view(ident).starts_with("_mm512_")) {
                    add(out, kIsaHermeticity, f, i,
                        "ISA-specific identifier '" + ident +
                            "' outside the hermetic backend TUs");
                    break;
                }
            }
            i += ident.size();
        }
    }
}

// --- rule: kernel-table-parity ----------------------------------------------

constexpr std::string_view kKernelTableParity = "kernel-table-parity";
constexpr std::string_view kRegistryHeader =
    "src/common/include/uhd/common/kernels.hpp";
constexpr std::string_view kRegistryTu = "src/common/kernels.cpp";

/// Function-pointer members of `struct kernel_table`, in declaration order
/// (includes `supported`, excludes the `name` string).
[[nodiscard]] std::vector<std::string> kernel_table_members(const source_file& hdr) {
    std::vector<std::string> members;
    std::size_t pos = find_token(hdr.code, "kernel_table");
    if (pos == std::string_view::npos) return members;
    const std::size_t open = hdr.code.find('{', pos);
    if (open == std::string::npos) return members;
    const std::size_t close = match_brace(hdr.code, open);
    if (close == std::string_view::npos) return members;
    const std::string_view body(hdr.code.data() + open, close - open);
    for (std::size_t i = 0; i + 1 < body.size(); ++i) {
        if (body[i] != '(') continue;
        std::size_t j = skip_ws(body, i + 1);
        if (j >= body.size() || body[j] != '*') continue;
        j = skip_ws(body, j + 1);
        const std::string ident = read_ident(body, j);
        if (ident.empty()) continue;
        j = skip_ws(body, j + ident.size());
        if (j < body.size() && body[j] == ')') members.push_back(ident);
    }
    return members;
}

struct registry_backend {
    std::string name;
    std::size_t offset;  ///< of the detail::<name>_table token in kernels.cpp
};

/// Backends listed in the kernels.cpp registry (detail::<name>_table()).
[[nodiscard]] std::vector<registry_backend> registry_backends(const source_file& reg) {
    std::vector<registry_backend> backends;
    static constexpr std::string_view kDetail = "detail::";
    for (std::size_t pos = reg.code.find(kDetail); pos != std::string::npos;
         pos = reg.code.find(kDetail, pos + 1)) {
        const std::string ident = read_ident(reg.code, pos + kDetail.size());
        if (!ident.ends_with("_table")) continue;
        const std::string name = ident.substr(0, ident.size() - 6);
        if (std::none_of(backends.begin(), backends.end(),
                         [&](const registry_backend& b) { return b.name == name; })) {
            backends.push_back({name, pos});
        }
    }
    return backends;
}

/// [open, close) offsets of the `kernel_table <ident>{...}` aggregate
/// initializer body in a backend TU; npos/npos when absent. Skips
/// reference/pointer declarations (`const kernel_table& accessor() {...}`).
[[nodiscard]] std::pair<std::size_t, std::size_t> table_initializer(
    const source_file& tu) {
    for (std::size_t pos = find_token(tu.code, "kernel_table");
         pos != std::string_view::npos;
         pos = find_token(tu.code, "kernel_table", pos + 1)) {
        std::size_t j = skip_ws(tu.code, pos + std::string_view("kernel_table").size());
        if (j >= tu.code.size() || !ident_char(tu.code[j])) continue;
        const std::string var = read_ident(tu.code, j);
        j = skip_ws(tu.code, j + var.size());
        if (j < tu.code.size() && tu.code[j] == '=') j = skip_ws(tu.code, j + 1);
        if (j >= tu.code.size() || tu.code[j] != '{') continue;
        const std::size_t close = match_brace(tu.code, j);
        if (close == std::string_view::npos) continue;
        return {j, close};
    }
    return {std::string_view::npos, std::string_view::npos};
}

/// Top-level comma-separated entry count of an aggregate initializer body
/// (trailing blank entries from a trailing comma are dropped; the blanked
/// name string literal still counts as an entry).
[[nodiscard]] std::size_t initializer_entries(std::string_view body) {
    std::vector<bool> blank_entries;
    int depth = 0;
    bool nonblank = false;
    for (std::size_t i = 1; i + 1 < body.size(); ++i) {  // skip outer braces
        const char c = body[i];
        if (c == '{' || c == '(' || c == '[') ++depth;
        if (c == '}' || c == ')' || c == ']') --depth;
        if (depth == 0 && c == ',') {
            blank_entries.push_back(!nonblank);
            nonblank = false;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) == 0) nonblank = true;
    }
    blank_entries.push_back(!nonblank);
    while (!blank_entries.empty() && blank_entries.back()) blank_entries.pop_back();
    // The leading name-string entry is blanked by the lexer but sits
    // before other entries, so it survives the trailing-blank trim.
    return blank_entries.size();
}

void rule_kernel_table_parity(const project& p, std::vector<finding>& out) {
    const source_file* hdr = p.find(kRegistryHeader);
    const source_file* reg = p.find(kRegistryTu);
    if (hdr == nullptr && reg == nullptr) return;  // tree has no registry
    if (hdr == nullptr || reg == nullptr) {
        const source_file& present = hdr != nullptr ? *hdr : *reg;
        add(out, kKernelTableParity, present, 0,
            std::string("kernel registry is half-present: missing ") +
                std::string(hdr == nullptr ? kRegistryHeader : kRegistryTu));
        return;
    }
    const std::vector<std::string> members = kernel_table_members(*hdr);
    if (members.empty()) {
        add(out, kKernelTableParity, *hdr, 0,
            "could not parse any function-pointer member out of struct "
            "kernel_table");
        return;
    }
    const std::vector<registry_backend> backends = registry_backends(*reg);
    if (backends.empty()) {
        add(out, kKernelTableParity, *reg, 0,
            "kernels.cpp registry lists no detail::<backend>_table entries");
        return;
    }
    if (std::none_of(backends.begin(), backends.end(),
                     [](const registry_backend& b) { return b.name == "scalar"; })) {
        add(out, kKernelTableParity, *reg, 0,
            "the pinned scalar oracle backend is not in the registry");
    }

    // The .inc fragments backend TUs may expand their kernels from.
    std::vector<const source_file*> common_incs;
    for (const source_file& f : p.files) {
        if (f.rel_path.starts_with("src/common/") && f.rel_path.ends_with(".inc")) {
            common_incs.push_back(&f);
        }
    }

    for (const registry_backend& backend : backends) {
        const std::string tu_path = "src/common/kernels_" + backend.name + ".cpp";
        const source_file* tu = p.find(tu_path);
        if (tu == nullptr) {
            add(out, kKernelTableParity, *reg, backend.offset,
                "backend '" + backend.name + "' is registered but " + tu_path +
                    " does not exist");
            continue;
        }
        const auto [open, close] = table_initializer(*tu);
        if (open == std::string_view::npos) {
            add(out, kKernelTableParity, *tu, 0,
                "backend '" + backend.name +
                    "' has no kernel_table aggregate initializer");
            continue;
        }
        const std::string_view body(tu->code.data() + open, close - open);
        const std::size_t expected = 1 + members.size();  // name + fn pointers
        const std::size_t got = initializer_entries(body);
        if (got != expected) {
            add(out, kKernelTableParity, *tu, open,
                "backend '" + backend.name + "' kernel_table initializer has " +
                    std::to_string(got) + " slots, expected " +
                    std::to_string(expected) + " (name + " +
                    std::to_string(members.size()) + " members) — a kernel slot "
                    "was dropped or added without updating kernels.hpp");
        }
        const std::size_t null_slot = find_token(body, "nullptr");
        if (null_slot != std::string_view::npos) {
            add(out, kKernelTableParity, *tu, open + null_slot,
                "backend '" + backend.name +
                    "' initializes a kernel slot to nullptr");
        }
        for (const std::string& member : members) {
            if (find_token(tu->code, member) != std::string_view::npos) continue;
            const bool in_inc = std::any_of(
                common_incs.begin(), common_incs.end(),
                [&](const source_file* inc) {
                    return find_token(inc->code, member) != std::string_view::npos;
                });
            if (!in_inc) {
                add(out, kKernelTableParity, *tu, 0,
                    "backend '" + backend.name + "' never names kernel '" +
                        member + "' — missing definition or initializer slot");
            }
        }
    }
}

// --- rule: dispatch-only ----------------------------------------------------

constexpr std::string_view kDispatchOnly = "dispatch-only";

/// Files that legitimately name the backend detail namespace: the registry
/// TU and header, the per-ISA TUs/fragments, and the oracle suites that
/// pit backends against the pinned references.
[[nodiscard]] bool detail_allowed(std::string_view rel) {
    if (rel.starts_with("src/common/kernels")) return true;  // .cpp/.hpp/.inc
    if (rel == kRegistryHeader) return true;
    return rel == "tests/test_simd_kernels.cpp" ||
           rel == "tests/test_block_kernels.cpp" ||
           rel == "tests/test_backend_dispatch.cpp";
}

/// Files that may repin the process-wide backend: the registry itself and
/// the test/bench harnesses that sweep backends in-process. Library and
/// example code must inherit UHD_BACKEND.
[[nodiscard]] bool force_backend_allowed(std::string_view rel) {
    if (rel.starts_with("src/common/kernels")) return true;
    if (rel == kRegistryHeader) return true;
    return rel.starts_with("tests/") || rel.starts_with("bench/");
}

void rule_dispatch_only(const project& p, std::vector<finding>& out) {
    // Accessor names come from the registry when parseable, with the known
    // set as fallback so the rule still bites in partial trees.
    std::vector<std::string> accessors = {"scalar_table", "swar_table",
                                          "avx2_table", "avx512_table"};
    if (const source_file* reg = p.find(kRegistryTu)) {
        for (const registry_backend& b : registry_backends(*reg)) {
            const std::string accessor = b.name + "_table";
            if (std::find(accessors.begin(), accessors.end(), accessor) ==
                accessors.end()) {
                accessors.push_back(accessor);
            }
        }
    }
    for (const source_file& f : p.files) {
        if (f.rel_path.ends_with(".md")) continue;
        if (!detail_allowed(f.rel_path)) {
            const std::size_t at = f.code.find("kernels::detail");
            if (at != std::string::npos) {
                add(out, kDispatchOnly, f, at,
                    "names the backend namespace uhd::kernels::detail — call "
                    "sites must go through the uhd::kernels dispatch layer");
            }
            for (const std::string& accessor : accessors) {
                const std::size_t acc = find_token(f.code, accessor);
                if (acc != std::string_view::npos) {
                    add(out, kDispatchOnly, f, acc,
                        "names backend table accessor '" + accessor +
                            "' directly instead of dispatching through "
                            "uhd::kernels");
                }
            }
        }
        if (!force_backend_allowed(f.rel_path)) {
            const std::size_t at = find_token(f.code, "force_backend");
            if (at != std::string_view::npos) {
                add(out, kDispatchOnly, f, at,
                    "calls uhd::kernels::force_backend — only test/bench "
                    "harnesses may repin the process-wide backend");
            }
        }
    }
}

// --- rule: bench-schema-sync ------------------------------------------------

constexpr std::string_view kBenchSchemaSync = "bench-schema-sync";
constexpr std::string_view kBenchReadme = "bench/README.md";
constexpr std::string_view kSchemaMarker = "uhd-lint:bench-schema";

/// Parse the `<!-- uhd-lint:bench-schema -->` markdown table out of
/// bench/README.md: rows `| name | N |` (backticks tolerated) until the
/// first non-table, non-blank line. Returns marker offset via out-param;
/// npos when the marker is missing.
[[nodiscard]] std::map<std::string, long> documented_schemas(const source_file& doc,
                                                             std::size_t& marker) {
    std::map<std::string, long> versions;
    marker = doc.raw.find(kSchemaMarker);
    if (marker == std::string::npos) return versions;
    std::size_t pos = doc.raw.find('\n', marker);
    while (pos != std::string::npos && pos + 1 < doc.raw.size()) {
        const std::size_t begin = pos + 1;
        std::size_t end = doc.raw.find('\n', begin);
        if (end == std::string::npos) end = doc.raw.size();
        const std::string_view line(doc.raw.data() + begin, end - begin);
        const std::size_t first = skip_ws(line, 0);
        if (first >= line.size()) {  // blank line between marker and table
            pos = end;
            continue;
        }
        if (line[first] != '|') break;  // table ended
        // Split the first two cells.
        std::vector<std::string> cells;
        std::string cell;
        for (std::size_t i = first + 1; i < line.size(); ++i) {
            if (line[i] == '|') {
                cells.push_back(cell);
                cell.clear();
            } else if (line[i] != ' ' && line[i] != '`') {
                cell += line[i];
            }
        }
        if (cells.size() >= 2 && !cells[0].empty() && !cells[1].empty() &&
            std::all_of(cells[1].begin(), cells[1].end(), [](char c) {
                return std::isdigit(static_cast<unsigned char>(c)) != 0;
            })) {
            versions[cells[0]] = std::stol(cells[1]);
        }
        pos = end;
    }
    return versions;
}

void rule_bench_schema_sync(const project& p, std::vector<finding>& out) {
    struct emission {
        const source_file* file;
        std::size_t offset;
        std::string bench;
        long version;
    };
    std::vector<emission> emissions;
    // Matches both emitted-JSON string literals ( \"bench\": \"encode\" )
    // and plain JSON text in fixtures ( "bench": "encode" ).
    static const std::regex bench_re(
        R"re(\\?"bench\\?"\s*:\s*\\?"([A-Za-z0-9_]+)\\?")re");
    static const std::regex version_re(
        R"re(\\?"schema_version\\?"\s*:\s*([0-9]+))re");
    for (const source_file& f : p.files) {
        if (!f.rel_path.starts_with("bench/") || !f.rel_path.ends_with(".cpp")) {
            continue;
        }
        for (std::sregex_iterator it(f.raw.begin(), f.raw.end(), bench_re), end;
             it != end; ++it) {
            const std::size_t at = static_cast<std::size_t>(it->position());
            const std::size_t window_end =
                std::min(f.raw.size(), at + std::size_t{400});
            std::smatch ver;
            const std::string window = f.raw.substr(at, window_end - at);
            if (std::regex_search(window, ver, version_re)) {
                emissions.push_back({&f, at + static_cast<std::size_t>(ver.position()),
                                     (*it)[1].str(), std::stol(ver[1].str())});
            } else {
                add(out, kBenchSchemaSync, f, at,
                    "emits bench '" + (*it)[1].str() +
                        "' without a schema_version nearby");
            }
        }
    }

    const source_file* doc = p.find(kBenchReadme);
    if (doc == nullptr) {
        if (!emissions.empty()) {
            add(out, kBenchSchemaSync, *emissions.front().file, 0,
                "bench emits schema JSON but bench/README.md does not exist");
        }
        return;
    }
    std::size_t marker = 0;
    const std::map<std::string, long> documented = documented_schemas(*doc, marker);
    if (marker == std::string::npos) {
        if (!emissions.empty()) {
            add(out, kBenchSchemaSync, *doc, 0,
                std::string("bench/README.md lacks the '") +
                    std::string(kSchemaMarker) + "' schema table");
        }
        return;
    }
    std::set<std::string> emitted_names;
    for (const emission& e : emissions) {
        emitted_names.insert(e.bench);
        const auto it = documented.find(e.bench);
        if (it == documented.end()) {
            add(out, kBenchSchemaSync, *e.file, e.offset,
                "bench '" + e.bench + "' (schema_version " +
                    std::to_string(e.version) +
                    ") is not documented in bench/README.md");
        } else if (it->second != e.version) {
            add(out, kBenchSchemaSync, *e.file, e.offset,
                "bench '" + e.bench + "' emits schema_version " +
                    std::to_string(e.version) + " but bench/README.md documents " +
                    std::to_string(it->second));
        }
    }
    for (const auto& [name, version] : documented) {
        if (emitted_names.count(name) == 0) {
            add(out, kBenchSchemaSync, *doc, marker,
                "bench/README.md documents bench '" + name + "' (schema_version " +
                    std::to_string(version) + ") but no bench/*.cpp emits it");
        }
    }
}

// --- rule: header-hygiene ---------------------------------------------------

constexpr std::string_view kHeaderHygiene = "header-hygiene";

[[nodiscard]] bool public_header(std::string_view rel) {
    return rel.starts_with("src/") && rel.ends_with(".hpp") &&
           rel.find("/include/uhd/") != std::string_view::npos;
}

struct std_mapping {
    std::string_view symbol;  ///< identifier right after std::
    std::string_view header;
};

/// Conservative std-symbol → required-header map. Only unmistakable names
/// are listed, so every hit is a genuine include-what-you-use violation.
constexpr std::array<std_mapping, 61> kStdMap = {{
    {"uint8_t", "cstdint"},       {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},      {"uint64_t", "cstdint"},
    {"int8_t", "cstdint"},        {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},       {"int64_t", "cstdint"},
    {"size_t", "cstddef"},        {"ptrdiff_t", "cstddef"},
    {"byte", "cstddef"},
    {"string", "string"},         {"string_view", "string_view"},
    {"vector", "vector"},         {"span", "span"},
    {"array", "array"},           {"atomic", "atomic"},
    {"optional", "optional"},     {"function", "functional"},
    {"shared_ptr", "memory"},     {"unique_ptr", "memory"},
    {"weak_ptr", "memory"},       {"make_shared", "memory"},
    {"make_unique", "memory"},
    {"move", "utility"},          {"forward", "utility"},
    {"swap", "utility"},          {"pair", "utility"},
    {"exchange", "utility"},
    {"mutex", "mutex"},           {"lock_guard", "mutex"},
    {"unique_lock", "mutex"},     {"scoped_lock", "mutex"},
    {"thread", "thread"},         {"jthread", "thread"},
    {"condition_variable", "condition_variable"},
    {"future", "future"},         {"promise", "future"},
    {"chrono", "chrono"},
    {"min", "algorithm"},         {"max", "algorithm"},
    {"clamp", "algorithm"},       {"fill", "algorithm"},
    {"copy", "algorithm"},        {"sort", "algorithm"},
    {"numeric_limits", "limits"},
    {"runtime_error", "stdexcept"},
    {"invalid_argument", "stdexcept"},
    {"out_of_range", "stdexcept"},
    {"logic_error", "stdexcept"},
    {"memcpy", "cstring"},        {"memset", "cstring"},
    {"memcmp", "cstring"},
    {"popcount", "bit"},          {"countr_zero", "bit"},
    {"countl_zero", "bit"},       {"bit_cast", "bit"},
    {"ostringstream", "sstream"}, {"istringstream", "sstream"},
    {"map", "map"},               {"unordered_map", "unordered_map"},
}};

void rule_header_hygiene(const project& p, std::vector<finding>& out) {
    for (const source_file& f : p.files) {
        if (!public_header(f.rel_path)) continue;

        // Include guard: first two preprocessor directives must be
        // #ifndef/#define of the same macro (or #pragma once first).
        std::vector<std::pair<std::size_t, std::string>> directives;
        std::size_t pos = 0;
        while (pos < f.code.size() && directives.size() < 2) {
            std::size_t eol = f.code.find('\n', pos);
            if (eol == std::string::npos) eol = f.code.size();
            const std::string_view line(f.code.data() + pos, eol - pos);
            const std::size_t hash = skip_ws(line, 0);
            if (hash < line.size() && line[hash] == '#') {
                directives.emplace_back(pos, std::string(line.substr(hash)));
            }
            pos = eol + 1;
        }
        bool guarded = false;
        if (!directives.empty()) {
            const std::string& first = directives[0].second;
            if (first.find("pragma") != std::string::npos &&
                first.find("once") != std::string::npos) {
                guarded = true;
            } else if (directives.size() >= 2 &&
                       first.find("ifndef") != std::string::npos) {
                const std::size_t m1 = skip_ws(first, first.find("ifndef") + 6);
                const std::string macro = read_ident(first, m1);
                const std::string& second = directives[1].second;
                const std::size_t def = second.find("define");
                if (!macro.empty() && def != std::string::npos) {
                    const std::size_t m2 = skip_ws(second, def + 6);
                    guarded = read_ident(second, m2) == macro;
                }
            }
        }
        if (!guarded) {
            add(out, kHeaderHygiene, f,
                directives.empty() ? 0 : directives[0].first,
                "public header lacks an include guard (#ifndef/#define pair "
                "or #pragma once before any other directive)");
        }

        // Include-what-you-use over the std symbol map.
        const std::set<std::string> includes = direct_includes(f);
        std::set<std::string> reported;
        static constexpr std::string_view kStd = "std::";
        for (std::size_t at = f.code.find(kStd); at != std::string::npos;
             at = f.code.find(kStd, at + 1)) {
            if (at > 0 && ident_char(f.code[at - 1])) continue;
            const std::string symbol = read_ident(f.code, at + kStd.size());
            for (const std_mapping& m : kStdMap) {
                if (symbol != m.symbol) continue;
                const std::string header(m.header);
                if (includes.count(header) == 0 &&
                    reported.insert(header).second) {
                    add(out, kHeaderHygiene, f, at,
                        "uses std::" + symbol + " without directly including <" +
                            header + "> (self-containment)");
                }
                break;
            }
        }
    }
}

constexpr std::array<rule, 5> kRules = {{
    {kIsaHermeticity,
     "intrinsics headers and __AVX*/__SSE*/_mm* tokens only in the "
     "designated backend TUs",
     rule_isa_hermeticity},
    {kKernelTableParity,
     "every kernel_table member has a slot and definition in every "
     "registered backend TU (incl. the pinned scalar oracle)",
     rule_kernel_table_parity},
    {kDispatchOnly,
     "no source outside the registry TUs names uhd::kernels::detail or "
     "repins the backend",
     rule_dispatch_only},
    {kBenchSchemaSync,
     "bench/*.cpp schema_version emissions match the bench/README.md table",
     rule_bench_schema_sync},
    {kHeaderHygiene,
     "public headers carry include guards and directly include the std "
     "headers they use",
     rule_header_hygiene},
}};

} // namespace

std::span<const rule> all_rules() noexcept { return kRules; }

std::vector<finding> run_rules(const project& p, std::span<const std::string> only) {
    std::vector<finding> findings;
    for (const rule& r : kRules) {
        const bool selected =
            only.empty() ||
            std::find(only.begin(), only.end(), std::string(r.id)) != only.end();
        if (selected) r.run(p, findings);
    }
    for (const std::string& name : only) {
        if (std::none_of(kRules.begin(), kRules.end(),
                         [&](const rule& r) { return r.id == name; })) {
            throw std::runtime_error("uhd_lint: unknown rule '" + name + "'");
        }
    }
    std::sort(findings.begin(), findings.end(),
              [](const finding& a, const finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace uhd_lint
