// uhd_lint CLI.
//
//   uhd_lint [--root <dir>] [--rule <id>]... [--list-rules] [--quiet]
//
// Scans the tree rooted at --root (default: the current directory) and
// prints findings as `file:line: [rule] message`. Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error — so both CTest and CI can gate on it.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "uhd_lint/lint.hpp"

namespace {

void usage(std::FILE* to) {
    std::fprintf(to,
                 "usage: uhd_lint [--root <dir>] [--rule <id>]... "
                 "[--list-rules] [--quiet]\n"
                 "Project-invariant static analyzer for the uhd tree.\n"
                 "Exit: 0 clean, 1 findings, 2 usage/I-O error.\n");
}

} // namespace

int main(int argc, char** argv) {
    std::string root = ".";
    std::vector<std::string> rules;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            rules.emplace_back(argv[++i]);
        } else if (arg == "--list-rules") {
            for (const uhd_lint::rule& r : uhd_lint::all_rules()) {
                std::printf("%-20s %s\n", std::string(r.id).c_str(),
                            std::string(r.summary).c_str());
            }
            return 0;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "uhd_lint: unknown argument '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    try {
        const uhd_lint::project tree = uhd_lint::load_project(root);
        const std::vector<uhd_lint::finding> findings =
            uhd_lint::run_rules(tree, rules);
        for (const uhd_lint::finding& f : findings) {
            std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        }
        if (!quiet) {
            std::printf("uhd_lint: scanned %zu files under %s: %zu finding%s\n",
                        tree.files.size(), tree.root.string().c_str(),
                        findings.size(), findings.size() == 1 ? "" : "s");
        }
        return findings.empty() ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "uhd_lint: %s\n", e.what());
        return 2;
    }
}
