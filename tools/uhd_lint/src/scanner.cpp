// Source loading and the comment/string-stripping lexer for uhd_lint.
//
// The "code" view it produces is byte-for-byte the same length as the raw
// file with every comment, string literal, and character literal replaced
// by spaces (newlines kept), so rules can token-scan without tripping on
// prose like "this header must never grow an #ifdef __AVX2__ block again"
// — the very comment that motivated building the analyzer.
#include "uhd_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace uhd_lint {

namespace {

[[nodiscard]] bool ident_char(char c) noexcept {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Blank [begin, end) to spaces, preserving newlines.
void blank(std::string& s, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end && i < s.size(); ++i) {
        if (s[i] != '\n') s[i] = ' ';
    }
}

/// Length of a raw-string prefix at `pos` ("R" already matched at pos),
/// writing the closing sentinel `)delim"` into `closer`; 0 when pos does
/// not start a raw string literal.
[[nodiscard]] std::size_t raw_string_open(std::string_view raw, std::size_t pos,
                                          std::string& closer) {
    // pos points at 'R'; expect R"delim( with delim up to 16 chars.
    if (pos + 1 >= raw.size() || raw[pos + 1] != '"') return 0;
    std::size_t i = pos + 2;
    std::string delim;
    while (i < raw.size() && raw[i] != '(' && delim.size() <= 16) {
        delim += raw[i];
        ++i;
    }
    if (i >= raw.size() || raw[i] != '(') return 0;
    closer = ")" + delim + "\"";
    return i - pos + 1;
}

} // namespace

std::string strip_comments_and_strings(std::string_view raw) {
    std::string out(raw);
    std::size_t i = 0;
    const std::size_t n = raw.size();
    while (i < n) {
        const char c = raw[i];
        if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
            std::size_t end = raw.find('\n', i);
            if (end == std::string_view::npos) end = n;
            blank(out, i, end);
            i = end;
        } else if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
            std::size_t end = raw.find("*/", i + 2);
            end = (end == std::string_view::npos) ? n : end + 2;
            blank(out, i, end);
            i = end;
        } else if (c == 'R' && (i == 0 || !ident_char(raw[i - 1]))) {
            std::string closer;
            const std::size_t open = raw_string_open(raw, i, closer);
            if (open == 0) {
                ++i;
                continue;
            }
            std::size_t end = raw.find(closer, i + open);
            end = (end == std::string_view::npos) ? n : end + closer.size();
            blank(out, i, end);
            i = end;
        } else if (c == '"' || c == '\'') {
            // Skip digit separators (1'000'000): a quote directly after an
            // alphanumeric character is not a character literal opener.
            if (c == '\'' && i > 0 && ident_char(raw[i - 1])) {
                ++i;
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && raw[j] != c) {
                if (raw[j] == '\\' && j + 1 < n) ++j;
                if (raw[j] == '\n') break;  // unterminated: stop at the line
                ++j;
            }
            const std::size_t end = (j < n && raw[j] == c) ? j + 1 : j;
            blank(out, i, end);
            i = end;
        } else {
            ++i;
        }
    }
    return out;
}

std::size_t source_file::line_of(std::size_t offset) const noexcept {
    offset = std::min(offset, raw.size());
    return 1 + static_cast<std::size_t>(
                   std::count(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(offset), '\n'));
}

bool token_at(std::string_view code, std::size_t pos, std::string_view token) noexcept {
    if (pos + token.size() > code.size()) return false;
    if (code.substr(pos, token.size()) != token) return false;
    if (pos > 0 && ident_char(code[pos - 1])) return false;
    const std::size_t after = pos + token.size();
    if (after < code.size() && ident_char(code[after])) return false;
    return true;
}

std::size_t find_token(std::string_view code, std::string_view token,
                       std::size_t from) noexcept {
    for (std::size_t pos = code.find(token, from); pos != std::string_view::npos;
         pos = code.find(token, pos + 1)) {
        if (token_at(code, pos, token)) return pos;
    }
    return std::string_view::npos;
}

namespace {

[[nodiscard]] std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

[[nodiscard]] bool wanted_extension(const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".inc";
}

[[nodiscard]] bool skipped_directory(const std::string& name) {
    return name == "lint_fixtures" || name.starts_with("build") ||
           name.starts_with(".");
}

} // namespace

const source_file* project::find(std::string_view rel_path) const noexcept {
    for (const source_file& f : files) {
        if (f.rel_path == rel_path) return &f;
    }
    return nullptr;
}

project load_project(const std::filesystem::path& root) {
    namespace fs = std::filesystem;
    if (!fs::is_directory(root)) {
        throw std::runtime_error("not a directory: " + root.string());
    }
    project p;
    p.root = root;

    const char* scanned_dirs[] = {"src", "tests", "bench", "examples", "tools"};
    std::vector<fs::path> paths;
    for (const char* dir : scanned_dirs) {
        const fs::path top = root / dir;
        if (!fs::is_directory(top)) continue;
        fs::recursive_directory_iterator it(top), end;
        for (; it != end; ++it) {
            if (it->is_directory()) {
                if (skipped_directory(it->path().filename().string())) {
                    it.disable_recursion_pending();
                }
                continue;
            }
            if (it->is_regular_file() && wanted_extension(it->path())) {
                paths.push_back(it->path());
            }
        }
    }
    if (fs::is_regular_file(root / "bench" / "README.md")) {
        paths.push_back(root / "bench" / "README.md");
    }
    std::sort(paths.begin(), paths.end());

    for (const fs::path& path : paths) {
        source_file f;
        f.rel_path = fs::relative(path, root).generic_string();
        f.raw = read_file(path);
        // README stays raw-only; stripping markdown as C++ is meaningless.
        f.code = path.extension() == ".md" ? f.raw
                                           : strip_comments_and_strings(f.raw);
        p.files.push_back(std::move(f));
    }
    return p;
}

} // namespace uhd_lint
