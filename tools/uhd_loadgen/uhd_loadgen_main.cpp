// uhd_loadgen: saturating wire-protocol load generator + correctness
// oracle. Opens N pipelined connections to a uhd_serve instance, drives
// predict (or predict_dynamic / raw-feature) traffic to saturation, and
// verifies EVERY reply bit-identical against an in-process
// inference_snapshot oracle rebuilt from the same deterministic workload
// — then emits wire-level p50/p99/throughput as BENCH_serve.json schema
// v3 (results: null, wire: populated).
//
//   ./uhd_serve & ./uhd_loadgen            # ephemeral port via port file
//
// Knobs: UHD_LOADGEN_HOST/PORT/PORT_FILE, UHD_LOADGEN_CONNECTIONS,
// UHD_LOADGEN_PIPELINE (in-flight frames per connection),
// UHD_LOADGEN_REQUESTS (per connection), UHD_LOADGEN_KIND (encoded|raw),
// UHD_LOADGEN_DYNAMIC, UHD_LOADGEN_JSON, UHD_LOADGEN_BASELINE_JSON
// (in-process BENCH_serve.json for the wire/in-process ratio),
// UHD_BENCH_SERVE_DIM (must match the server's).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/cpu_features.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/inference_snapshot.hpp"
#include "uhd/net/wire_client.hpp"
#include "uhd/net/wire_format.hpp"
#include "workload.hpp"

namespace {

using namespace uhd;

std::size_t env_count(const char* name, std::int64_t fallback) {
    const std::int64_t value = env_int(name, fallback);
    return static_cast<std::size_t>(value < 1 ? 1 : value);
}

/// Same backend attribution block as the BENCH_*.json emitters.
void write_backend_json(std::FILE* f) {
    std::fprintf(f, "  \"backend\": {\"selected\": \"%s\", \"override\": ",
                 kernels::active().name);
    const std::string_view override_value = kernels::backend_override();
    if (override_value.empty()) {
        std::fprintf(f, "null");
    } else {
        std::fprintf(f, "\"%.*s\"", static_cast<int>(override_value.size()),
                     override_value.data());
    }
    std::fprintf(f, ", \"cpu\": \"%s\", \"compiled\": [",
                 cpu().to_string().c_str());
    const auto compiled = kernels::compiled_backends();
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        std::fprintf(f, "\"%s\"%s", compiled[i]->name,
                     i + 1 < compiled.size() ? ", " : "");
    }
    std::fprintf(f, "]},\n");
}

double percentile_us(const std::vector<double>& sorted_us, double p) {
    if (sorted_us.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted_us.size() - 1);
    return sorted_us[static_cast<std::size_t>(rank + 0.5)];
}

/// Pull "throughput_qps": <num> out of an in-process BENCH_serve.json.
std::optional<double> baseline_qps(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const std::string key = "\"throughput_qps\": ";
    const std::size_t pos = text.find(key);
    if (pos == std::string::npos) return std::nullopt;
    return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

struct connection_result {
    std::vector<double> latencies_us;
    std::size_t mismatches = 0;
    std::size_t version_mismatches = 0;
    std::string error; ///< non-empty: the connection failed outright
};

} // namespace

int main() {
    const std::string host = env_string("UHD_LOADGEN_HOST", "127.0.0.1");
    const std::string port_file =
        env_string("UHD_LOADGEN_PORT_FILE", "uhd_serve.port");
    long long port_knob = env_int("UHD_LOADGEN_PORT", 0);
    const std::size_t connections = env_count("UHD_LOADGEN_CONNECTIONS", 4);
    const std::size_t pipeline = env_count("UHD_LOADGEN_PIPELINE", 32);
    const std::size_t per_conn = env_count("UHD_LOADGEN_REQUESTS", 25000);
    const std::string kind_name = env_string("UHD_LOADGEN_KIND", "encoded");
    const bool dynamic = env_bool("UHD_LOADGEN_DYNAMIC", false);
    const std::string json_path =
        env_string("UHD_LOADGEN_JSON", "BENCH_serve.json");
    const std::string baseline_path = env_string("UHD_LOADGEN_BASELINE_JSON", "");
    const bool raw_kind = kind_name == "raw";
    if (!raw_kind && kind_name != "encoded") {
        std::fprintf(stderr, "UHD_LOADGEN_KIND must be encoded or raw\n");
        return 1;
    }

    if (port_knob == 0) {
        // Wait briefly for the server's readiness file (ephemeral ports).
        for (int attempt = 0; attempt < 200 && port_knob == 0; ++attempt) {
            std::ifstream in(port_file);
            if (in >> port_knob && port_knob != 0) break;
            port_knob = 0;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        if (port_knob == 0) {
            std::fprintf(stderr, "no UHD_LOADGEN_PORT and no port file %s\n",
                         port_file.c_str());
            return 1;
        }
    }
    const auto port = static_cast<std::uint16_t>(port_knob);

    // Oracle: the same deterministic workload the server built. Expected
    // labels are computed in THIS process; any wire divergence is a real
    // serving bug, not environment noise.
    uhd_loadgen::workload work = uhd_loadgen::make_workload();
    const hdc::inference_snapshot oracle = work.model.snapshot();
    const std::size_t pool = work.test.size();
    std::vector<std::uint32_t> expected(pool);
    if (dynamic) {
        const hdc::dynamic_query_policy policy =
            work.model.calibrate_dynamic(work.test, 0.99);
        const std::size_t words = oracle.words_per_class();
        std::vector<std::uint64_t> packed(words);
        std::vector<std::size_t> answer(1);
        for (std::size_t i = 0; i < pool; ++i) {
            kernels::sign_binarize(work.queries.data() + i * work.dim,
                                   work.dim, packed.data());
            policy.answer_block(oracle, packed, 1, answer);
            expected[i] = static_cast<std::uint32_t>(answer[0]);
        }
    } else {
        for (std::size_t i = 0; i < pool; ++i) {
            expected[i] = static_cast<std::uint32_t>(oracle.predict_encoded(
                std::span<const std::int32_t>(work.queries.data() + i * work.dim,
                                              work.dim)));
        }
    }

    // Pre-serialize one request frame per pool entry (request_id is
    // patched per send): the measurement loop does no encoding work.
    const net::opcode op =
        dynamic ? net::opcode::predict_dynamic : net::opcode::predict;
    std::vector<std::vector<std::uint8_t>> frames(pool);
    for (std::size_t i = 0; i < pool; ++i) {
        if (raw_kind) {
            net::append_predict_raw(frames[i], op, 0, work.test.image(i));
        } else {
            net::append_predict_encoded(
                frames[i], op, 0,
                std::span<const std::int32_t>(work.queries.data() + i * work.dim,
                                              work.dim));
        }
    }

    std::printf("# uhd_loadgen: %s:%u, %zu conns x %zu reqs, pipeline %zu, "
                "kind=%s dynamic=%d dim=%zu\n",
                host.c_str(), port, connections, per_conn, pipeline,
                kind_name.c_str(), dynamic ? 1 : 0, work.dim);

    std::vector<connection_result> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            connection_result& result = results[c];
            try {
                net::wire_client client(host, port);
                client.set_recv_timeout_ms(30000);
                result.latencies_us.reserve(per_conn);
                std::vector<std::uint8_t> burst;
                std::vector<std::chrono::steady_clock::time_point> sent_at(
                    per_conn);
                std::optional<std::uint64_t> version_seen;
                std::size_t sent = 0;
                std::size_t received = 0;
                while (received < per_conn) {
                    if (sent < per_conn && sent - received < pipeline) {
                        // Refill the window in one send: patch each
                        // frame's request_id, stamp, go.
                        burst.clear();
                        const auto now = std::chrono::steady_clock::now();
                        while (sent < per_conn && sent - received < pipeline) {
                            const std::size_t q = (c * 7919 + sent) % pool;
                            const std::size_t base = burst.size();
                            burst.insert(burst.end(), frames[q].begin(),
                                         frames[q].end());
                            net::store_u32(burst.data() + base + 4,
                                           static_cast<std::uint32_t>(sent));
                            sent_at[sent] = now;
                            ++sent;
                        }
                        client.send_bytes(burst);
                    }
                    const net::wire_frame reply = client.read_frame();
                    const auto now = std::chrono::steady_clock::now();
                    if (reply.header.op != net::reply_opcode(op)) {
                        result.error = "unexpected reply opcode " +
                                       std::to_string(reply.header.op);
                        return;
                    }
                    const auto parsed = net::parse_predict_reply(reply.payload);
                    if (!parsed.has_value()) {
                        result.error = "malformed predict reply";
                        return;
                    }
                    const std::size_t id = reply.header.request_id;
                    if (id >= per_conn) {
                        result.error = "reply id out of range";
                        return;
                    }
                    const std::size_t q = (c * 7919 + id) % pool;
                    if (parsed->label != expected[q]) ++result.mismatches;
                    // Snapshot-version coherence: a static server must
                    // answer every request from the same published state.
                    if (version_seen.has_value() &&
                        *version_seen != parsed->snapshot_version) {
                        ++result.version_mismatches;
                    }
                    version_seen = parsed->snapshot_version;
                    result.latencies_us.push_back(
                        std::chrono::duration<double, std::micro>(
                            now - sent_at[id])
                            .count());
                    ++received;
                }
            } catch (const std::exception& e) {
                result.error = e.what();
            }
        });
    }
    for (auto& t : threads) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    for (std::size_t c = 0; c < connections; ++c) {
        if (!results[c].error.empty()) {
            std::fprintf(stderr, "FAIL: connection %zu: %s\n", c,
                         results[c].error.c_str());
            return 1;
        }
    }

    // Server-side accounting over one extra connection.
    net::stats_reply server_stats{};
    try {
        net::wire_client client(host, port);
        client.set_recv_timeout_ms(30000);
        client.ping();
        server_stats = client.stats();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: stats/ping connection: %s\n", e.what());
        return 1;
    }

    std::vector<double> merged;
    std::size_t mismatches = 0;
    std::size_t version_mismatches = 0;
    for (const connection_result& result : results) {
        merged.insert(merged.end(), result.latencies_us.begin(),
                      result.latencies_us.end());
        mismatches += result.mismatches;
        version_mismatches += result.version_mismatches;
    }
    std::sort(merged.begin(), merged.end());
    const double p50 = percentile_us(merged, 0.50);
    const double p99 = percentile_us(merged, 0.99);
    const std::size_t total = connections * per_conn;
    const double qps =
        wall_s > 0.0 ? static_cast<double>(total) / wall_s : 0.0;
    const bool bit_identity = mismatches == 0 && version_mismatches == 0 &&
                              merged.size() == total;

    const std::optional<double> parsed_baseline =
        baseline_path.empty() ? std::nullopt : baseline_qps(baseline_path);
    // Pull the value out once: keeps GCC's maybe-uninitialized analysis
    // happy across the printf calls below.
    const bool have_baseline = parsed_baseline.has_value();
    const double baseline_value = have_baseline ? *parsed_baseline : 0.0;
    const double ratio = baseline_value > 0.0 ? qps / baseline_value : 0.0;

    std::printf("# %.0f wire qps, p50 %.1f us, p99 %.1f us, %zu mismatches, "
                "%zu version splits; server: %llu frames in, %llu throttles, "
                "block utilization %.2f\n",
                qps, p50, p99, mismatches, version_mismatches,
                static_cast<unsigned long long>(server_stats.frames_in),
                static_cast<unsigned long long>(server_stats.throttle_events),
                server_stats.kernel_calls == 0
                    ? 0.0
                    : static_cast<double>(server_stats.queries) /
                          static_cast<double>(server_stats.kernel_calls));
    if (have_baseline) {
        std::printf("# in-process baseline %.0f qps -> wire/in-process %.2f\n",
                    baseline_value, ratio);
    }

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"schema_version\": 3,\n");
    std::fprintf(f,
                 "  \"workload\": {\"dim\": %zu, \"classes\": %zu, "
                 "\"connections\": %zu, \"requests_per_connection\": %zu, "
                 "\"pipeline\": %zu, \"kind\": \"%s\", \"dynamic\": %s},\n",
                 work.dim, static_cast<std::size_t>(work.train.num_classes()),
                 connections, per_conn, pipeline, kind_name.c_str(),
                 dynamic ? "true" : "false");
    write_backend_json(f);
    std::fprintf(f, "  \"results\": null,\n");
    std::fprintf(f,
                 "  \"wire\": {\"throughput_qps\": %.1f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"requests\": %zu, \"seconds\": %.4f,\n",
                 qps, p50, p99, total, wall_s);
    std::fprintf(
        f,
        "    \"frames_in\": %llu, \"frames_out\": %llu, \"bytes_in\": %llu, "
        "\"bytes_out\": %llu, \"throttle_events\": %llu,\n",
        static_cast<unsigned long long>(server_stats.frames_in),
        static_cast<unsigned long long>(server_stats.frames_out),
        static_cast<unsigned long long>(server_stats.bytes_in),
        static_cast<unsigned long long>(server_stats.bytes_out),
        static_cast<unsigned long long>(server_stats.throttle_events));
    std::fprintf(
        f,
        "    \"server_block_utilization\": %.2f, \"bit_identity\": %s,\n",
        server_stats.kernel_calls == 0
            ? 0.0
            : static_cast<double>(server_stats.queries) /
                  static_cast<double>(server_stats.kernel_calls),
        bit_identity ? "true" : "false");
    if (have_baseline) {
        std::fprintf(f,
                     "    \"inprocess_qps\": %.1f, "
                     "\"wire_vs_inprocess\": %.3f},\n",
                     baseline_value, ratio);
    } else {
        std::fprintf(f, "    \"inprocess_qps\": null, "
                        "\"wire_vs_inprocess\": null},\n");
    }
    std::fprintf(f,
                 "  \"gates\": {\"bit_identity\": %s, "
                 "\"throughput_positive\": %s, \"p99_ge_p50\": %s, "
                 "\"wire_ge_half_inprocess\": %s}\n",
                 bit_identity ? "true" : "false", qps > 0.0 ? "true" : "false",
                 p99 >= p50 ? "true" : "false",
                 (!have_baseline || ratio >= 0.5) ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());

    // Hard exit gates: every answer bit-identical to the oracle, and the
    // wire actually moved traffic. The >= 50%-of-in-process acceptance is
    // recorded (gates.wire_ge_half_inprocess) rather than exiting nonzero:
    // perf ratios on shared CI boxes are telemetry, correctness is law.
    if (!bit_identity) {
        std::fprintf(stderr,
                     "FAIL: wire answers diverged from the in-process oracle "
                     "(%zu label, %zu version, %zu/%zu samples)\n",
                     mismatches, version_mismatches, merged.size(), total);
        return 1;
    }
    if (qps <= 0.0 || p50 <= 0.0) {
        std::fprintf(stderr, "FAIL: implausible wire measurements (qps=%.1f, "
                             "p50=%.2f)\n",
                     qps, p50);
        return 1;
    }
    return 0;
}
