// uhd_loadgen: saturating wire-protocol load generator + correctness
// oracle. Two modes (UHD_LOADGEN_MODE):
//
// * wire (default): opens N pipelined connections to a uhd_serve
//   instance, drives predict (or predict_dynamic / raw-feature) traffic
//   to saturation, and verifies EVERY reply bit-identical against an
//   in-process inference_snapshot oracle rebuilt from the same
//   deterministic workload — then emits wire-level p50/p99/throughput as
//   BENCH_serve.json schema v4 (results: null, wire populated,
//   wire.scaling null).
// * sweep: reactor-scaling study, fully in-process. For each reactor
//   count in UHD_LOADGEN_SWEEP_REACTORS (default "1,2") it starts its
//   own engine + wire_server and drives encoded and raw payloads over
//   loopback — raw both through the engine's off-loop encode stage and,
//   as the baseline, inline on a single reactor — recording qps/p50/p99,
//   per-reactor CPU utilization (loop_cpu_ns / wall) and the encode-
//   stage accounting into the schema v4 wire.scaling section.
//
// Bit-identity is a hard exit gate in BOTH modes; throughput ratios are
// recorded in gates as telemetry (shared CI boxes — and this one exposes
// a single CPU, so reactor scaling cannot express itself locally).
//
//   ./uhd_serve & ./uhd_loadgen            # ephemeral port via port file
//   UHD_LOADGEN_MODE=sweep ./uhd_loadgen   # self-contained scaling study
//
// Knobs: UHD_LOADGEN_MODE, UHD_LOADGEN_HOST/PORT/PORT_FILE,
// UHD_LOADGEN_CONNECTIONS, UHD_LOADGEN_PIPELINE (in-flight frames per
// connection), UHD_LOADGEN_REQUESTS (per connection), UHD_LOADGEN_KIND
// (encoded|raw), UHD_LOADGEN_DYNAMIC, UHD_LOADGEN_SWEEP_REACTORS,
// UHD_LOADGEN_JSON, UHD_LOADGEN_BASELINE_JSON (in-process
// BENCH_serve.json for the wire/in-process ratio), UHD_BENCH_SERVE_DIM
// (must match the server's).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/cpu_features.hpp"
#include "uhd/common/error.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/hdc/dynamic_query.hpp"
#include "uhd/hdc/inference_snapshot.hpp"
#include "uhd/net/wire_client.hpp"
#include "uhd/net/wire_format.hpp"
#include "uhd/net/wire_server.hpp"
#include "uhd/serve/inference_engine.hpp"
#include "workload.hpp"

namespace {

using namespace uhd;

std::size_t env_count(const char* name, std::int64_t fallback) {
    const std::int64_t value = env_int(name, fallback);
    return static_cast<std::size_t>(value < 1 ? 1 : value);
}

/// Same backend attribution block as the BENCH_*.json emitters.
void write_backend_json(std::FILE* f) {
    std::fprintf(f, "  \"backend\": {\"selected\": \"%s\", \"override\": ",
                 kernels::active().name);
    const std::string_view override_value = kernels::backend_override();
    if (override_value.empty()) {
        std::fprintf(f, "null");
    } else {
        std::fprintf(f, "\"%.*s\"", static_cast<int>(override_value.size()),
                     override_value.data());
    }
    std::fprintf(f, ", \"cpu\": \"%s\", \"compiled\": [",
                 cpu().to_string().c_str());
    const auto compiled = kernels::compiled_backends();
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        std::fprintf(f, "\"%s\"%s", compiled[i]->name,
                     i + 1 < compiled.size() ? ", " : "");
    }
    std::fprintf(f, "]},\n");
}

double percentile_us(const std::vector<double>& sorted_us, double p) {
    if (sorted_us.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted_us.size() - 1);
    return sorted_us[static_cast<std::size_t>(rank + 0.5)];
}

/// Pull "throughput_qps": <num> out of an in-process BENCH_serve.json.
std::optional<double> baseline_qps(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const std::string key = "\"throughput_qps\": ";
    const std::size_t pos = text.find(key);
    if (pos == std::string::npos) return std::nullopt;
    return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

struct connection_result {
    std::vector<double> latencies_us;
    std::size_t mismatches = 0;
    std::size_t version_mismatches = 0;
    std::string error; ///< non-empty: the connection failed outright
};

/// One measurement drive: what to send, where, and how hard.
struct drive_config {
    std::string host;
    std::uint16_t port = 0;
    std::size_t connections = 0;
    std::size_t per_conn = 0;
    std::size_t pipeline = 0;
    std::size_t pool = 0;
    const std::vector<std::vector<std::uint8_t>>* frames = nullptr;
    const std::vector<std::uint32_t>* expected = nullptr;
    net::opcode op = net::opcode::predict;
};

/// One drive's aggregated measurements.
struct drive_stats {
    double qps = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double wall_s = 0.0;
    std::size_t total = 0;
    std::size_t samples = 0;
    std::size_t mismatches = 0;
    std::size_t version_mismatches = 0;
    bool bit_identity = false;
    std::string error; ///< first connection failure, if any
};

/// Saturate the server per `cfg` and check every reply against the
/// oracle's expected labels. Pure measurement: no JSON, no exit.
drive_stats drive(const drive_config& cfg) {
    std::vector<connection_result> results(cfg.connections);
    std::vector<std::thread> threads;
    threads.reserve(cfg.connections);
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < cfg.connections; ++c) {
        threads.emplace_back([&, c] {
            connection_result& result = results[c];
            try {
                net::wire_client client(cfg.host, cfg.port);
                client.set_recv_timeout_ms(30000);
                result.latencies_us.reserve(cfg.per_conn);
                std::vector<std::uint8_t> burst;
                std::vector<std::chrono::steady_clock::time_point> sent_at(
                    cfg.per_conn);
                std::optional<std::uint64_t> version_seen;
                std::size_t sent = 0;
                std::size_t received = 0;
                while (received < cfg.per_conn) {
                    if (sent < cfg.per_conn && sent - received < cfg.pipeline) {
                        // Refill the window in one send: patch each
                        // frame's request_id, stamp, go.
                        burst.clear();
                        const auto now = std::chrono::steady_clock::now();
                        while (sent < cfg.per_conn &&
                               sent - received < cfg.pipeline) {
                            const std::size_t q = (c * 7919 + sent) % cfg.pool;
                            const std::size_t base = burst.size();
                            burst.insert(burst.end(), (*cfg.frames)[q].begin(),
                                         (*cfg.frames)[q].end());
                            net::store_u32(burst.data() + base + 4,
                                           static_cast<std::uint32_t>(sent));
                            sent_at[sent] = now;
                            ++sent;
                        }
                        client.send_bytes(burst);
                    }
                    const net::wire_frame reply = client.read_frame();
                    const auto now = std::chrono::steady_clock::now();
                    if (reply.header.op != net::reply_opcode(cfg.op)) {
                        result.error = "unexpected reply opcode " +
                                       std::to_string(reply.header.op);
                        return;
                    }
                    const auto parsed = net::parse_predict_reply(reply.payload);
                    if (!parsed.has_value()) {
                        result.error = "malformed predict reply";
                        return;
                    }
                    const std::size_t id = reply.header.request_id;
                    if (id >= cfg.per_conn) {
                        result.error = "reply id out of range";
                        return;
                    }
                    const std::size_t q = (c * 7919 + id) % cfg.pool;
                    if (parsed->label != (*cfg.expected)[q]) ++result.mismatches;
                    // Snapshot-version coherence: a static server must
                    // answer every request from the same published state.
                    if (version_seen.has_value() &&
                        *version_seen != parsed->snapshot_version) {
                        ++result.version_mismatches;
                    }
                    version_seen = parsed->snapshot_version;
                    result.latencies_us.push_back(
                        std::chrono::duration<double, std::micro>(
                            now - sent_at[id])
                            .count());
                    ++received;
                }
            } catch (const std::exception& e) {
                result.error = e.what();
            }
        });
    }
    for (auto& t : threads) t.join();

    drive_stats out;
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    std::vector<double> merged;
    for (const connection_result& result : results) {
        if (!result.error.empty() && out.error.empty()) out.error = result.error;
        merged.insert(merged.end(), result.latencies_us.begin(),
                      result.latencies_us.end());
        out.mismatches += result.mismatches;
        out.version_mismatches += result.version_mismatches;
    }
    std::sort(merged.begin(), merged.end());
    out.p50 = percentile_us(merged, 0.50);
    out.p99 = percentile_us(merged, 0.99);
    out.total = cfg.connections * cfg.per_conn;
    out.samples = merged.size();
    out.qps = out.wall_s > 0.0 ? static_cast<double>(out.total) / out.wall_s
                               : 0.0;
    out.bit_identity = out.error.empty() && out.mismatches == 0 &&
                       out.version_mismatches == 0 &&
                       out.samples == out.total;
    return out;
}

/// Full-scan expected labels for the whole query pool (the oracle; valid
/// for encoded AND raw payloads — encode_batch is bit-identical to the
/// server-side encode).
std::vector<std::uint32_t> expected_full_scan(
    const uhd_loadgen::workload& work, const hdc::inference_snapshot& oracle) {
    std::vector<std::uint32_t> expected(work.test.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        expected[i] = static_cast<std::uint32_t>(oracle.predict_encoded(
            std::span<const std::int32_t>(work.queries.data() + i * work.dim,
                                          work.dim)));
    }
    return expected;
}

/// Pre-serialized request frames for the pool (request_id patched later).
std::vector<std::vector<std::uint8_t>> make_frames(
    const uhd_loadgen::workload& work, net::opcode op, bool raw_kind) {
    std::vector<std::vector<std::uint8_t>> frames(work.test.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (raw_kind) {
            net::append_predict_raw(frames[i], op, 0, work.test.image(i));
        } else {
            net::append_predict_encoded(
                frames[i], op, 0,
                std::span<const std::int32_t>(work.queries.data() + i * work.dim,
                                              work.dim));
        }
    }
    return frames;
}

/// One row of the wire.scaling section.
struct sweep_row {
    std::size_t reactors = 0;
    bool raw = false;
    bool inline_encode = false;
    drive_stats st;
    std::vector<double> reactor_cpu; ///< loop_cpu_ns / wall, per reactor
    std::uint64_t raw_queries = 0;
    std::uint64_t encode_kernel_calls = 0;
    bool shard_sum_ok = false; ///< shards sum to the aggregate stats()
};

/// Parse "1,2,4" into reactor counts (clamped to [1, 256]).
std::vector<std::size_t> parse_reactor_list(const std::string& spec) {
    std::vector<std::size_t> out;
    std::stringstream stream(spec);
    std::string item;
    while (std::getline(stream, item, ',')) {
        const long long value = std::strtoll(item.c_str(), nullptr, 10);
        if (value >= 1 && value <= 256) {
            out.push_back(static_cast<std::size_t>(value));
        }
    }
    if (out.empty()) out.push_back(1);
    return out;
}

} // namespace

int main() {
    const std::string mode = env_string("UHD_LOADGEN_MODE", "wire");
    const std::string host = env_string("UHD_LOADGEN_HOST", "127.0.0.1");
    const std::string port_file =
        env_string("UHD_LOADGEN_PORT_FILE", "uhd_serve.port");
    long long port_knob = env_int("UHD_LOADGEN_PORT", 0);
    const std::size_t connections = env_count("UHD_LOADGEN_CONNECTIONS", 4);
    const std::size_t pipeline = env_count("UHD_LOADGEN_PIPELINE", 32);
    const std::size_t per_conn = env_count("UHD_LOADGEN_REQUESTS", 25000);
    const std::string kind_name = env_string("UHD_LOADGEN_KIND", "encoded");
    const bool dynamic = env_bool("UHD_LOADGEN_DYNAMIC", false);
    const std::string json_path =
        env_string("UHD_LOADGEN_JSON", "BENCH_serve.json");
    const std::string baseline_path = env_string("UHD_LOADGEN_BASELINE_JSON", "");
    const bool raw_kind = kind_name == "raw";
    if (!raw_kind && kind_name != "encoded") {
        std::fprintf(stderr, "UHD_LOADGEN_KIND must be encoded or raw\n");
        return 1;
    }
    const bool sweep_mode = mode == "sweep";
    if (!sweep_mode && mode != "wire") {
        std::fprintf(stderr, "UHD_LOADGEN_MODE must be wire or sweep\n");
        return 1;
    }

    // Oracle: the same deterministic workload the server built. Expected
    // labels are computed in THIS process; any wire divergence is a real
    // serving bug, not environment noise.
    uhd_loadgen::workload work = uhd_loadgen::make_workload();
    const hdc::inference_snapshot oracle = work.model.snapshot();
    const std::size_t pool = work.test.size();

    const std::optional<double> parsed_baseline =
        baseline_path.empty() ? std::nullopt : baseline_qps(baseline_path);
    const bool have_baseline = parsed_baseline.has_value();
    const double baseline_value = have_baseline ? *parsed_baseline : 0.0;

    std::FILE* f = nullptr;
    const auto open_json = [&]() -> bool {
        f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return false;
        }
        return true;
    };

    if (sweep_mode) {
        // ---- reactor-scaling study: in-process servers over loopback ----
        const std::vector<std::size_t> reactor_counts = parse_reactor_list(
            env_string("UHD_LOADGEN_SWEEP_REACTORS", "1,2"));
        const std::vector<std::uint32_t> expected =
            expected_full_scan(work, oracle);
        const std::vector<std::vector<std::uint8_t>> encoded_frames =
            make_frames(work, net::opcode::predict, false);
        const std::vector<std::vector<std::uint8_t>> raw_frames =
            make_frames(work, net::opcode::predict, true);

        struct plan_entry {
            std::size_t reactors;
            bool raw;
            bool inline_encode;
        };
        std::vector<plan_entry> plan;
        // Raw inline on one reactor FIRST: the baseline the off-loop rows
        // are judged against (PR 9's serving configuration).
        plan.push_back({1, true, true});
        for (const std::size_t n : reactor_counts) plan.push_back({n, false, false});
        for (const std::size_t n : reactor_counts) plan.push_back({n, true, false});

        std::vector<sweep_row> rows;
        for (const plan_entry& entry : plan) {
            serve::engine_options engine_options;
            engine_options.workers = env_count("UHD_SERVE_WORKERS", 2);
            engine_options.max_batch = env_count("UHD_SERVE_BATCH", 32);
            if (entry.raw && !entry.inline_encode) {
                engine_options.encoder = &work.model.encoder();
            }
            serve::inference_engine engine(work.model.snapshot(),
                                           engine_options);
            net::wire_server_options server_options;
            server_options.reactors = entry.reactors;
            // Inline fallback needs the server-side encoder; passing the
            // trainer provides it (and matches the uhd_serve setup).
            net::wire_server server(engine, server_options, &work.model);
            server.start();

            drive_config cfg;
            cfg.host = "127.0.0.1";
            cfg.port = server.port();
            cfg.connections = connections;
            cfg.per_conn = per_conn;
            cfg.pipeline = pipeline;
            cfg.pool = pool;
            cfg.frames = entry.raw ? &raw_frames : &encoded_frames;
            cfg.expected = &expected;
            cfg.op = net::opcode::predict;

            sweep_row row;
            row.reactors = entry.reactors;
            row.raw = entry.raw;
            row.inline_encode = entry.inline_encode;
            row.st = drive(cfg);
            // Per-reactor utilization + the shard-sum invariant, read
            // before stop() tears anything down.
            const net::wire_stats total = server.stats();
            net::wire_stats summed;
            for (std::size_t i = 0; i < server.reactor_count(); ++i) {
                const net::wire_stats shard = server.reactor_stats(i);
                summed += shard;
                row.reactor_cpu.push_back(
                    row.st.wall_s > 0.0
                        ? static_cast<double>(shard.loop_cpu_ns) /
                              (row.st.wall_s * 1e9)
                        : 0.0);
            }
            row.shard_sum_ok = summed.frames_in == total.frames_in &&
                               summed.frames_out == total.frames_out &&
                               summed.bytes_in == total.bytes_in &&
                               summed.bytes_out == total.bytes_out &&
                               summed.connections_accepted ==
                                   total.connections_accepted;
            const serve::serve_stats engine_stats = engine.stats();
            row.raw_queries = engine_stats.raw_queries;
            row.encode_kernel_calls = engine_stats.encode_kernel_calls;
            server.stop();
            engine.stop();

            std::printf("# sweep reactors=%zu kind=%s%s: %.0f qps, p50 %.1f us, "
                        "p99 %.1f us, bit_identity=%d, shard_sum_ok=%d, "
                        "encode_calls=%llu\n",
                        row.reactors, row.raw ? "raw" : "encoded",
                        row.inline_encode ? " (inline)" : "", row.st.qps,
                        row.st.p50, row.st.p99, row.st.bit_identity ? 1 : 0,
                        row.shard_sum_ok ? 1 : 0,
                        static_cast<unsigned long long>(row.encode_kernel_calls));
            rows.push_back(std::move(row));
        }

        // Ratio telemetry: encoded wire at max reactors vs the in-process
        // baseline; raw off-loop at max reactors vs raw inline at 1.
        double encoded_best = 0.0;
        double raw_best = 0.0;
        double raw_inline = 0.0;
        bool all_identical = true;
        bool all_shards_ok = true;
        for (const sweep_row& row : rows) {
            all_identical = all_identical && row.st.bit_identity;
            all_shards_ok = all_shards_ok && row.shard_sum_ok;
            if (row.raw && row.inline_encode) raw_inline = row.st.qps;
            if (row.raw && !row.inline_encode) raw_best = std::max(raw_best, row.st.qps);
            if (!row.raw) encoded_best = std::max(encoded_best, row.st.qps);
        }
        const double raw_vs_inline =
            raw_inline > 0.0 ? raw_best / raw_inline : 0.0;
        const double encoded_vs_inprocess =
            baseline_value > 0.0 ? encoded_best / baseline_value : 0.0;

        if (!open_json()) return 1;
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"bench\": \"serve\",\n");
        std::fprintf(f, "  \"schema_version\": 4,\n");
        std::fprintf(f,
                     "  \"workload\": {\"dim\": %zu, \"classes\": %zu, "
                     "\"connections\": %zu, \"requests_per_connection\": %zu, "
                     "\"pipeline\": %zu, \"kind\": \"sweep\", "
                     "\"dynamic\": false},\n",
                     work.dim,
                     static_cast<std::size_t>(work.train.num_classes()),
                     connections, per_conn, pipeline);
        write_backend_json(f);
        std::fprintf(f, "  \"results\": null,\n");
        std::fprintf(f, "  \"wire\": {\"mode\": \"sweep\", \"scaling\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const sweep_row& row = rows[i];
            std::fprintf(f,
                         "    {\"reactors\": %zu, \"kind\": \"%s\", "
                         "\"inline_encode\": %s, \"throughput_qps\": %.1f, "
                         "\"p50_us\": %.2f, \"p99_us\": %.2f, "
                         "\"bit_identity\": %s, \"shard_sum_ok\": %s, "
                         "\"raw_queries\": %llu, \"encode_kernel_calls\": %llu, "
                         "\"reactor_cpu\": [",
                         row.reactors, row.raw ? "raw" : "encoded",
                         row.inline_encode ? "true" : "false", row.st.qps,
                         row.st.p50, row.st.p99,
                         row.st.bit_identity ? "true" : "false",
                         row.shard_sum_ok ? "true" : "false",
                         static_cast<unsigned long long>(row.raw_queries),
                         static_cast<unsigned long long>(
                             row.encode_kernel_calls));
            for (std::size_t rc = 0; rc < row.reactor_cpu.size(); ++rc) {
                std::fprintf(f, "%.3f%s", row.reactor_cpu[rc],
                             rc + 1 < row.reactor_cpu.size() ? ", " : "");
            }
            std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f,
                     "    \"raw_offloop_vs_inline\": %.3f, "
                     "\"encoded_vs_inprocess\": %s},\n",
                     raw_vs_inline,
                     baseline_value > 0.0
                         ? (std::to_string(encoded_vs_inprocess).c_str())
                         : "null");
        std::fprintf(f,
                     "  \"gates\": {\"bit_identity\": %s, "
                     "\"throughput_positive\": %s, \"shard_sum_ok\": %s, "
                     "\"raw_offloop_ge_2x_inline\": %s, "
                     "\"encoded_ge_inprocess\": %s}\n",
                     all_identical ? "true" : "false",
                     rows.empty() || rows[0].st.qps > 0.0 ? "true" : "false",
                     all_shards_ok ? "true" : "false",
                     raw_vs_inline >= 2.0 ? "true" : "false",
                     (!have_baseline || encoded_vs_inprocess >= 1.0) ? "true"
                                                                     : "false");
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("# wrote %s\n", json_path.c_str());

        // Hard exit gates, sweep flavor: every row bit-identical and the
        // shard sums exact. The scaling ratios are telemetry (see header).
        if (!all_identical || !all_shards_ok) {
            std::fprintf(stderr, "FAIL: sweep rows diverged from the oracle "
                                 "or shard sums broke\n");
            return 1;
        }
        return 0;
    }

    // ---- wire mode: drive an external uhd_serve --------------------------
    if (port_knob == 0) {
        // Wait briefly for the server's readiness file (ephemeral ports).
        for (int attempt = 0; attempt < 200 && port_knob == 0; ++attempt) {
            std::ifstream in(port_file);
            if (in >> port_knob && port_knob != 0) break;
            port_knob = 0;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        if (port_knob == 0) {
            std::fprintf(stderr, "no UHD_LOADGEN_PORT and no port file %s\n",
                         port_file.c_str());
            return 1;
        }
    }
    const auto port = static_cast<std::uint16_t>(port_knob);

    std::vector<std::uint32_t> expected(pool);
    if (dynamic) {
        const hdc::dynamic_query_policy policy =
            work.model.calibrate_dynamic(work.test, 0.99);
        const std::size_t words = oracle.words_per_class();
        std::vector<std::uint64_t> packed(words);
        std::vector<std::size_t> answer(1);
        for (std::size_t i = 0; i < pool; ++i) {
            kernels::sign_binarize(work.queries.data() + i * work.dim,
                                   work.dim, packed.data());
            policy.answer_block(oracle, packed, 1, answer);
            expected[i] = static_cast<std::uint32_t>(answer[0]);
        }
    } else {
        expected = expected_full_scan(work, oracle);
    }

    // Pre-serialize one request frame per pool entry (request_id is
    // patched per send): the measurement loop does no encoding work.
    const net::opcode op =
        dynamic ? net::opcode::predict_dynamic : net::opcode::predict;
    const std::vector<std::vector<std::uint8_t>> frames =
        make_frames(work, op, raw_kind);

    std::printf("# uhd_loadgen: %s:%u, %zu conns x %zu reqs, pipeline %zu, "
                "kind=%s dynamic=%d dim=%zu\n",
                host.c_str(), port, connections, per_conn, pipeline,
                kind_name.c_str(), dynamic ? 1 : 0, work.dim);

    drive_config cfg;
    cfg.host = host;
    cfg.port = port;
    cfg.connections = connections;
    cfg.per_conn = per_conn;
    cfg.pipeline = pipeline;
    cfg.pool = pool;
    cfg.frames = &frames;
    cfg.expected = &expected;
    cfg.op = op;
    const drive_stats st = drive(cfg);
    if (!st.error.empty()) {
        std::fprintf(stderr, "FAIL: connection: %s\n", st.error.c_str());
        return 1;
    }

    // Server-side accounting over one extra connection.
    net::stats_reply server_stats{};
    try {
        net::wire_client client(host, port);
        client.set_recv_timeout_ms(30000);
        client.ping();
        server_stats = client.stats();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FAIL: stats/ping connection: %s\n", e.what());
        return 1;
    }

    const double ratio = baseline_value > 0.0 ? st.qps / baseline_value : 0.0;

    std::printf("# %.0f wire qps, p50 %.1f us, p99 %.1f us, %zu mismatches, "
                "%zu version splits; server: %llu frames in, %llu throttles, "
                "%llu reactors, block utilization %.2f, encode calls %llu\n",
                st.qps, st.p50, st.p99, st.mismatches, st.version_mismatches,
                static_cast<unsigned long long>(server_stats.frames_in),
                static_cast<unsigned long long>(server_stats.throttle_events),
                static_cast<unsigned long long>(server_stats.reactors),
                server_stats.kernel_calls == 0
                    ? 0.0
                    : static_cast<double>(server_stats.queries) /
                          static_cast<double>(server_stats.kernel_calls),
                static_cast<unsigned long long>(
                    server_stats.encode_kernel_calls));
    if (have_baseline) {
        std::printf("# in-process baseline %.0f qps -> wire/in-process %.2f\n",
                    baseline_value, ratio);
    }

    if (!open_json()) return 1;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"schema_version\": 4,\n");
    std::fprintf(f,
                 "  \"workload\": {\"dim\": %zu, \"classes\": %zu, "
                 "\"connections\": %zu, \"requests_per_connection\": %zu, "
                 "\"pipeline\": %zu, \"kind\": \"%s\", \"dynamic\": %s},\n",
                 work.dim, static_cast<std::size_t>(work.train.num_classes()),
                 connections, per_conn, pipeline, kind_name.c_str(),
                 dynamic ? "true" : "false");
    write_backend_json(f);
    std::fprintf(f, "  \"results\": null,\n");
    std::fprintf(f,
                 "  \"wire\": {\"mode\": \"wire\", \"throughput_qps\": %.1f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f, \"requests\": %zu, "
                 "\"seconds\": %.4f,\n",
                 st.qps, st.p50, st.p99, st.total, st.wall_s);
    std::fprintf(
        f,
        "    \"frames_in\": %llu, \"frames_out\": %llu, \"bytes_in\": %llu, "
        "\"bytes_out\": %llu, \"throttle_events\": %llu, \"reactors\": %llu,\n",
        static_cast<unsigned long long>(server_stats.frames_in),
        static_cast<unsigned long long>(server_stats.frames_out),
        static_cast<unsigned long long>(server_stats.bytes_in),
        static_cast<unsigned long long>(server_stats.bytes_out),
        static_cast<unsigned long long>(server_stats.throttle_events),
        static_cast<unsigned long long>(server_stats.reactors));
    std::fprintf(
        f,
        "    \"raw_queries\": %llu, \"encode_kernel_calls\": %llu,\n",
        static_cast<unsigned long long>(server_stats.raw_queries),
        static_cast<unsigned long long>(server_stats.encode_kernel_calls));
    std::fprintf(
        f,
        "    \"server_block_utilization\": %.2f, \"bit_identity\": %s, "
        "\"scaling\": null,\n",
        server_stats.kernel_calls == 0
            ? 0.0
            : static_cast<double>(server_stats.queries) /
                  static_cast<double>(server_stats.kernel_calls),
        st.bit_identity ? "true" : "false");
    if (have_baseline) {
        std::fprintf(f,
                     "    \"inprocess_qps\": %.1f, "
                     "\"wire_vs_inprocess\": %.3f},\n",
                     baseline_value, ratio);
    } else {
        std::fprintf(f, "    \"inprocess_qps\": null, "
                        "\"wire_vs_inprocess\": null},\n");
    }
    std::fprintf(f,
                 "  \"gates\": {\"bit_identity\": %s, "
                 "\"throughput_positive\": %s, \"p99_ge_p50\": %s, "
                 "\"wire_ge_half_inprocess\": %s}\n",
                 st.bit_identity ? "true" : "false",
                 st.qps > 0.0 ? "true" : "false",
                 st.p99 >= st.p50 ? "true" : "false",
                 (!have_baseline || ratio >= 0.5) ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());

    // Hard exit gates: every answer bit-identical to the oracle, and the
    // wire actually moved traffic. The >= 50%-of-in-process acceptance is
    // recorded (gates.wire_ge_half_inprocess) rather than exiting nonzero:
    // perf ratios on shared CI boxes are telemetry, correctness is law.
    if (!st.bit_identity) {
        std::fprintf(stderr,
                     "FAIL: wire answers diverged from the in-process oracle "
                     "(%zu label, %zu version, %zu/%zu samples)\n",
                     st.mismatches, st.version_mismatches, st.samples,
                     st.total);
        return 1;
    }
    if (st.qps <= 0.0 || st.p50 <= 0.0) {
        std::fprintf(stderr, "FAIL: implausible wire measurements (qps=%.1f, "
                             "p50=%.2f)\n",
                     st.qps, st.p50);
        return 1;
    }
    return 0;
}
