// Shared deterministic workload for uhd_serve / uhd_loadgen.
//
// Both processes rebuild the exact same model from the same synthetic
// seeds, so the load generator holds a local inference_snapshot that is
// bit-identical to the one the server serves — every wire answer can be
// checked against an in-process oracle without shipping model state.
// Keep in sync with bench_serve.cpp (same dataset seeds + geometry) so
// the wire numbers are comparable to the in-process BENCH_serve.json.
#ifndef UHD_LOADGEN_WORKLOAD_HPP
#define UHD_LOADGEN_WORKLOAD_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "uhd/common/config.hpp"
#include "uhd/common/thread_pool.hpp"
#include "uhd/core/model.hpp"
#include "uhd/data/synthetic.hpp"

namespace uhd_loadgen {

struct workload {
    uhd::data::dataset train;
    uhd::data::dataset test;
    uhd::core::uhd_model model;
    std::vector<std::int32_t> queries; ///< test pre-encoded, image-major
    std::size_t dim = 0;
};

/// Deterministic model + query pool (same seeds as bench_serve: train
/// 1000@42, test 256@44; dim from UHD_BENCH_SERVE_DIM, default 1024).
inline workload make_workload() {
    const std::int64_t dim_knob = uhd::env_int("UHD_BENCH_SERVE_DIM", 1024);
    const std::size_t dim = static_cast<std::size_t>(dim_knob < 1 ? 1 : dim_knob);
    uhd::data::dataset train = uhd::data::make_synthetic_digits(1000, 42);
    uhd::data::dataset test = uhd::data::make_synthetic_digits(256, 44);
    uhd::core::uhd_config cfg;
    cfg.dim = dim;
    uhd::core::uhd_model model(cfg, train.shape(), train.num_classes(),
                               uhd::hdc::train_mode::raw_sums,
                               uhd::hdc::query_mode::binarized);
    model.fit_parallel(train, &uhd::thread_pool::shared());

    std::vector<std::int32_t> queries(test.size() * dim);
    std::vector<std::uint8_t> flat;
    flat.reserve(test.size() * test.shape().pixels());
    for (std::size_t i = 0; i < test.size(); ++i) {
        const auto img = test.image(i);
        flat.insert(flat.end(), img.begin(), img.end());
    }
    model.encoder().encode_batch(flat, test.size(), queries);

    return workload{std::move(train), std::move(test), std::move(model),
                    std::move(queries), dim};
}

} // namespace uhd_loadgen

#endif // UHD_LOADGEN_WORKLOAD_HPP
