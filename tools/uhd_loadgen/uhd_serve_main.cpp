// uhd_serve: stand-alone wire server over the deterministic loadgen
// workload. Binds 127.0.0.1:UHD_SERVE_PORT (0 = ephemeral; the bound
// port goes to stdout and to the UHD_SERVE_PORT_FILE readiness file
// so scripts can wait for readiness), then serves until SIGINT/SIGTERM.
//
//   UHD_SERVE_PORT=7548 ./uhd_serve &
//   ./uhd_loadgen
//
// Knobs (see README.md): UHD_SERVE_PORT, UHD_SERVE_BACKLOG,
// UHD_SERVE_INFLIGHT, UHD_SERVE_WORKERS, UHD_SERVE_BATCH,
// UHD_SERVE_PUBLISH_EVERY, UHD_SERVE_DYNAMIC, UHD_SERVE_PORT_FILE,
// UHD_SERVE_INLINE_ENCODE (encode raw queries on the reactor thread —
// the pre-encode-stage baseline — instead of the engine's off-loop
// batched stage), UHD_NET_REACTORS / UHD_AFFINITY (resolved by the
// server/engine), UHD_BENCH_SERVE_DIM (workload geometry, shared with
// the loadgen).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "uhd/common/config.hpp"
#include "uhd/common/kernels.hpp"
#include "uhd/net/wire_server.hpp"
#include "uhd/serve/inference_engine.hpp"
#include "workload.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

std::size_t env_count(const char* name, std::int64_t fallback) {
    const std::int64_t value = uhd::env_int(name, fallback);
    return static_cast<std::size_t>(value < 1 ? 1 : value);
}

} // namespace

int main() {
    using namespace uhd;

    uhd_loadgen::workload work = uhd_loadgen::make_workload();

    serve::engine_options engine_options;
    engine_options.workers = env_count("UHD_SERVE_WORKERS", 2);
    engine_options.max_batch = env_count("UHD_SERVE_BATCH", 32);
    // Off-loop raw-query encoding is the default: the engine workers
    // batch-encode raw payloads via encode_batch. UHD_SERVE_INLINE_ENCODE
    // reverts to encoding inline on the reactor thread (the baseline the
    // encode-stage speedup is measured against).
    const bool inline_encode = env_bool("UHD_SERVE_INLINE_ENCODE", false);
    if (!inline_encode) engine_options.encoder = &work.model.encoder();

    // The engine is either plain (full scan only; predict_dynamic frames
    // get an `unsupported` error) or policy-configured (both opcodes
    // served, routed per request).
    const bool dynamic = env_bool("UHD_SERVE_DYNAMIC", false);
    std::optional<serve::inference_engine> engine;
    if (dynamic) {
        // Deterministic calibration on the shared test split: the loadgen
        // rebuilds the identical policy for its oracle.
        engine.emplace(work.model.snapshot(),
                       work.model.calibrate_dynamic(work.test, 0.99),
                       engine_options);
    } else {
        engine.emplace(work.model.snapshot(), engine_options);
    }

    net::wire_server_options options;
    options.port = static_cast<std::uint16_t>(env_int("UHD_SERVE_PORT", 0));
    options.backlog = static_cast<int>(env_count("UHD_SERVE_BACKLOG", 128));
    options.inflight_cap = env_count("UHD_SERVE_INFLIGHT", 128);
    options.publish_every = env_count("UHD_SERVE_PUBLISH_EVERY", 64);
    net::wire_server server(*engine, options, &work.model);
    server.start();

    std::printf("uhd_serve: backend=%s dim=%zu classes=%zu port=%u reactors=%zu "
                "workers=%zu batch=%zu inflight_cap=%zu dynamic=%d "
                "inline_encode=%d\n",
                kernels::active().name, work.dim,
                static_cast<std::size_t>(work.train.num_classes()),
                server.port(), server.reactor_count(), engine_options.workers,
                engine_options.max_batch, options.inflight_cap, dynamic ? 1 : 0,
                inline_encode ? 1 : 0);
    std::fflush(stdout);

    // Readiness file: written only after start() succeeded, so a waiting
    // script can connect as soon as the file appears. The default matches
    // uhd_loadgen's UHD_LOADGEN_PORT_FILE default, so server + loadgen
    // rendezvous with no configuration; set it empty to skip the file.
    const std::string port_file =
        env_string("UHD_SERVE_PORT_FILE", "uhd_serve.port");
    if (!port_file.empty()) {
        std::FILE* f = std::fopen(port_file.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
            return 1;
        }
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    server.stop();
    const net::wire_stats stats = server.stats();
    std::printf("uhd_serve: served %llu frames (%llu bytes in, %llu out), "
                "%llu connections, %llu malformed, %llu throttles\n",
                static_cast<unsigned long long>(stats.frames_in),
                static_cast<unsigned long long>(stats.bytes_in),
                static_cast<unsigned long long>(stats.bytes_out),
                static_cast<unsigned long long>(stats.connections_accepted),
                static_cast<unsigned long long>(stats.malformed_frames),
                static_cast<unsigned long long>(stats.throttle_events));
    return 0;
}
